#include "ins/nametree/name_tree.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <functional>
#include <sstream>
#include <unordered_map>

namespace ins {

NameTree::NameTree(Options options) : options_(std::move(options)) {
  if (options_.symbols != nullptr) {
    symbols_ = options_.symbols;
    owns_symbols_ = false;
  } else {
    symbols_ = std::make_shared<SymbolTable>();
    owns_symbols_ = true;
  }
  if (options_.enable_posting_index) {
    index_ = std::make_unique<PostingIndex>();
  }
  root_.parent_attr = nullptr;
}

NameTree::~NameTree() = default;

// ---------------------------------------------------------------------------
// Candidate sets

namespace {

// Tombstone for erased set slots; never a valid NameRecord pointer.
const NameRecord* const kErasedSlot = reinterpret_cast<const NameRecord*>(1);

inline size_t PtrSlot(const NameRecord* p, size_t mask) {
  const uint64_t h = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(p)) *
                     UINT64_C(0x9e3779b97f4a7c15);
  return static_cast<size_t>(h >> 32) & mask;
}

}  // namespace

void NameTree::IntersectWith(CandidateSet* s, const std::vector<const NameRecord*>* other,
                             LookupScratch* scratch) {
  // Size the stamped set for this round; bumping the generation empties it
  // without touching memory, so steady-state cost is pure probes.
  const size_t need = std::max(s->universal ? size_t{0} : s->items->size(), other->size());
  size_t want = 64;
  while (want < 2 * need) {
    want <<= 1;
  }
  if (want > scratch->set_slots_.size()) {
    scratch->set_slots_.assign(want, LookupScratch::SetSlot{});
    scratch->set_gen_ = 0;
  }
  auto* slots = scratch->set_slots_.data();
  const size_t mask = scratch->set_slots_.size() - 1;
  const uint64_t gen = ++scratch->set_gen_;

  auto insert = [&](const NameRecord* p) {  // true when newly inserted
    size_t i = PtrSlot(p, mask);
    while (true) {
      auto& slot = slots[i];
      if (slot.gen != gen) {
        slot.gen = gen;
        slot.ptr = p;
        return true;
      }
      if (slot.ptr == p) {
        return false;
      }
      i = (i + 1) & mask;
    }
  };

  if (s->universal) {
    // First constraint: adopt `other`, collapsing duplicate terminals.
    s->universal = false;
    s->items->clear();
    for (const NameRecord* p : *other) {
      if (insert(p)) {
        s->items->push_back(p);
      }
    }
    return;
  }

  std::vector<const NameRecord*>& items = *s->items;
  if (items.empty()) {
    return;
  }
  for (const NameRecord* p : items) {
    insert(p);
  }
  // Erase-on-match keeps each record at most once even when `other` holds
  // duplicates; matches compact into the front of `items`.
  auto erase = [&](const NameRecord* p) {  // true when present and erased
    size_t i = PtrSlot(p, mask);
    while (true) {
      auto& slot = slots[i];
      if (slot.gen != gen) {
        return false;
      }
      if (slot.ptr == p) {
        slot.ptr = kErasedSlot;
        return true;
      }
      i = (i + 1) & mask;
    }
  };
  size_t write = 0;
  for (const NameRecord* p : *other) {
    if (erase(p)) {
      items[write++] = p;
    }
  }
  items.resize(write);
}

// ---------------------------------------------------------------------------
// Graft / ungraft

void NameTree::Graft(ValueNode* parent, const CompiledName& name, uint32_t begin,
                     uint32_t count, NameRecord* rec, uint64_t fp) {
  const std::vector<CompiledAvNode>& nodes = name.nodes();
  for (uint32_t i = begin; i < begin + count; ++i) {
    const CompiledAvNode& n = nodes[i];
    assert(n.attribute != kInvalidSymbol && n.token != kInvalidSymbol &&
           "grafting requires a ForUpdate-compiled name");
    std::unique_ptr<AttributeNode>& attr_slot = parent->attributes.FindOrInsert(n.attribute);
    if (attr_slot == nullptr) {
      attr_slot = std::make_unique<AttributeNode>();
      attr_slot->attribute = n.attribute;
      attr_slot->parent = parent;
    }
    AttributeNode* ta = attr_slot.get();

    std::unique_ptr<ValueNode>& value_slot = ta->values.FindOrInsert(n.token);
    if (value_slot == nullptr) {
      value_slot = std::make_unique<ValueNode>();
      value_slot->token = n.token;
      value_slot->has_number = n.has_number;
      value_slot->number = n.number;
      value_slot->parent_attr = ta;
    }
    ValueNode* tv = value_slot.get();

    // Sibling attributes of a specifier level are unique, so each compiled
    // node maps to a distinct value path: one AddTerm per node, no dedup.
    uint64_t child_fp = 0;
    if (index_ != nullptr) {
      child_fp = index_->AddTerm(fp, n.attribute, n.token, n.child_count == 0, rec->slot_);
    }

    if (n.child_count == 0) {
      tv->records.push_back(rec);
      rec->terminals_.push_back(tv);
      if (options_.cache_subtree_records) {
        AddToAncestorCaches(tv, rec);
      }
    } else {
      Graft(tv, name, n.child_begin, n.child_count, rec, child_fp);
    }
  }
}

void NameTree::AddToAncestorCaches(ValueNode* leaf, const NameRecord* rec) {
  for (ValueNode* v = leaf; v != nullptr;
       v = v->parent_attr != nullptr ? v->parent_attr->parent : nullptr) {
    auto& cache = v->subtree_cache;
    cache.insert(std::upper_bound(cache.begin(), cache.end(), rec), rec);
    if (v == &root_) {
      break;
    }
  }
}

void NameTree::RemoveFromAncestorCaches(ValueNode* leaf, const NameRecord* rec) {
  for (ValueNode* v = leaf; v != nullptr;
       v = v->parent_attr != nullptr ? v->parent_attr->parent : nullptr) {
    auto& cache = v->subtree_cache;
    auto it = std::lower_bound(cache.begin(), cache.end(), rec);
    assert(it != cache.end() && *it == rec);
    cache.erase(it);
    if (v == &root_) {
      break;
    }
  }
}

void NameTree::IndexRemoveTerms(NameRecord* rec) {
  if (index_ == nullptr) {
    return;
  }
  // Recompute the record's value-path fingerprints from the tree instead of
  // storing them per record: walk leaf -> root from each terminal, then hash
  // the chains root -> leaf. Terminals of one record share path prefixes, so
  // the collected keys are deduped by vfp (a vfp names exactly one tree
  // node, and graft added exactly one term per node).
  struct TermKey {
    uint64_t vfp;
    uint64_t afp;
    bool terminal;
  };
  std::vector<TermKey> keys;
  std::vector<std::pair<SymbolId, SymbolId>> chain;  // (attribute, token), leaf -> root
  for (void* t : rec->terminals_) {
    chain.clear();
    for (ValueNode* v = static_cast<ValueNode*>(t); v != &root_; v = v->parent_attr->parent) {
      chain.emplace_back(v->parent_attr->attribute, v->token);
    }
    uint64_t fp = PostingIndex::kRootFp;
    for (size_t i = chain.size(); i-- > 0;) {
      const uint64_t afp = PostingIndex::AttrFp(fp, chain[i].first);
      const uint64_t vfp = PostingIndex::ValueFp(fp, chain[i].first, chain[i].second);
      keys.push_back({vfp, afp, /*terminal=*/i == 0});
      fp = vfp;
    }
  }
  std::sort(keys.begin(), keys.end(),
            [](const TermKey& a, const TermKey& b) { return a.vfp < b.vfp; });
  keys.erase(std::unique(keys.begin(), keys.end(),
                         [](const TermKey& a, const TermKey& b) { return a.vfp == b.vfp; }),
             keys.end());
  for (const TermKey& k : keys) {
    index_->RemoveTerm(k.vfp, k.afp, k.terminal, rec->slot_);
  }
}

void NameTree::Ungraft(NameRecord* rec) {
  for (void* t : rec->terminals_) {
    auto* tv = static_cast<ValueNode*>(t);
    auto it = std::find(tv->records.begin(), tv->records.end(), rec);
    assert(it != tv->records.end());
    tv->records.erase(it);
    if (options_.cache_subtree_records) {
      RemoveFromAncestorCaches(tv, rec);
    }
    PruneUpward(tv);
  }
  rec->terminals_.clear();
}

void NameTree::PruneUpward(ValueNode* v) {
  while (v != &root_ && v->records.empty() && v->attributes.empty()) {
    AttributeNode* ta = v->parent_attr;
    ta->values.Erase(v->token);  // destroys *v
    if (!ta->values.empty()) {
      return;
    }
    ValueNode* up = ta->parent;
    up->attributes.Erase(ta->attribute);  // destroys *ta
    v = up;
  }
}

// ---------------------------------------------------------------------------
// Upsert

NameTree::UpsertOutcome NameTree::Upsert(const NameSpecifier& name, const NameRecord& info) {
  return Upsert(name, CompiledName::ForUpdate(name, symbols_.get()), info);
}

NameTree::UpsertOutcome NameTree::Upsert(const NameSpecifier& name,
                                         const CompiledName& compiled,
                                         const NameRecord& info) {
  assert(!name.empty() && "cannot advertise an empty name-specifier");
  auto it = records_.find(info.announcer);
  if (it == records_.end()) {
    auto rec = std::make_unique<NameRecord>(info);
    rec->terminals_.clear();
    NameRecord* raw = rec.get();
    records_.emplace(info.announcer, std::move(rec));
    if (index_ != nullptr) {
      raw->slot_ = index_->AcquireSlot(raw);
    }
    Graft(&root_, compiled, 0, compiled.root_count(), raw, PostingIndex::kRootFp);
    PushExpiry(raw->expires, raw->announcer);
    return {UpsertOutcome::kNew, raw, true};
  }

  NameRecord* rec = it->second.get();
  if (info.version < rec->version) {
    return {UpsertOutcome::kIgnored, nullptr, false};
  }

  const bool version_advanced = info.version > rec->version;
  const bool renamed = !(ExtractName(rec) == name);
  const bool changed = !(rec->endpoint == info.endpoint) || rec->app_metric != info.app_metric ||
                       !(rec->route == info.route);

  rec->endpoint = info.endpoint;
  rec->app_metric = info.app_metric;
  rec->route = info.route;
  rec->version = info.version;
  if (info.expires > rec->expires) {
    rec->expires = info.expires;
    PushExpiry(rec->expires, rec->announcer);  // the older heap entry goes stale
  }

  if (renamed) {
    IndexRemoveTerms(rec);  // before Ungraft prunes the chains it walks
    Ungraft(rec);
    Graft(&root_, compiled, 0, compiled.root_count(), rec, PostingIndex::kRootFp);
    return {UpsertOutcome::kRenamed, rec, version_advanced};
  }
  return {changed ? UpsertOutcome::kChanged : UpsertOutcome::kRefreshed, rec, version_advanced};
}

// ---------------------------------------------------------------------------
// LOOKUP-NAME

void NameTree::SubtreeRecords(const ValueNode* node,
                              std::vector<const NameRecord*>* out) const {
  if (options_.cache_subtree_records) {
    out->insert(out->end(), node->subtree_cache.begin(), node->subtree_cache.end());
    return;
  }
  out->insert(out->end(), node->records.begin(), node->records.end());
  node->attributes.ForEach([&](SymbolId, const std::unique_ptr<AttributeNode>& child) {
    SubtreeRecords(child.get(), out);
  });
}

void NameTree::SubtreeRecords(const AttributeNode* node,
                              std::vector<const NameRecord*>* out) const {
  node->values.ForEach([&](SymbolId, const std::unique_ptr<ValueNode>& child) {
    SubtreeRecords(child.get(), out);
  });
}

void NameTree::LookupLevel(const ValueNode* node, const CompiledName& query, uint32_t begin,
                           uint32_t count, CandidateSet* s, LookupScratch* scratch) const {
  const std::vector<CompiledAvNode>& qnodes = query.nodes();
  for (uint32_t qi = begin; qi < begin + count; ++qi) {
    const CompiledAvNode& q = qnodes[qi];
    if (s->Empty()) {
      return;  // intersection can only shrink; nothing left to find
    }
    // An attribute never interned probes absent here exactly like an
    // attribute this tree has not grafted: `if Ta = null then continue`.
    const std::unique_ptr<AttributeNode>* attr_slot = node->attributes.Find(q.attribute);
    if (attr_slot == nullptr) {
      continue;
    }
    const AttributeNode* ta = attr_slot->get();

    if (q.kind == Value::Kind::kWildcard) {
      // Union of all records in the subtree rooted at the attribute-node.
      std::vector<const NameRecord*>* sub = scratch->Acquire();
      SubtreeRecords(ta, sub);
      IntersectWith(s, sub, scratch);
      continue;
    }

    if (q.kind != Value::Kind::kLiteral) {
      // Range-selection extension: like a wildcard filtered to the value
      // children whose cached numeric satisfies the constraint — integer
      // compares against graft-time parses, no strtod per candidate.
      std::vector<const NameRecord*>* sub = scratch->Acquire();
      ta->values.ForEach([&](SymbolId, const std::unique_ptr<ValueNode>& child) {
        if (!child->has_number) {
          return;  // non-numeric token: a range matches nothing here
        }
        const double n = child->number;
        bool ok = false;
        switch (q.kind) {
          case Value::Kind::kLess:
            ok = n < q.number;
            break;
          case Value::Kind::kLessEqual:
            ok = n <= q.number;
            break;
          case Value::Kind::kGreater:
            ok = n > q.number;
            break;
          case Value::Kind::kGreaterEqual:
            ok = n >= q.number;
            break;
          default:
            break;
        }
        if (ok) {
          SubtreeRecords(child.get(), sub);
        }
      });
      IntersectWith(s, sub, scratch);
      continue;
    }

    // Literal: one integer-keyed probe (an uninterned query token — value
    // advertised nowhere — probes absent and correctly matches nothing).
    const std::unique_ptr<ValueNode>* value_slot = ta->values.Find(q.token);
    if (value_slot == nullptr) {
      // The advertised values for this attribute all differ: no match.
      if (s->universal) {
        s->universal = false;
      }
      s->items->clear();
      return;
    }
    const ValueNode* tv = value_slot->get();

    if (q.child_count == 0) {
      // Query chain ends here: everything at or below this value matches
      // (interior value-nodes "correspond to" all records beneath them).
      std::vector<const NameRecord*>* sub = scratch->Acquire();
      SubtreeRecords(tv, sub);
      IntersectWith(s, sub, scratch);
    } else if (tv->attributes.empty()) {
      // Tree chain ends here: the advertisements' omitted descendants are
      // wildcards, so the records at this leaf satisfy the deeper query.
      std::vector<const NameRecord*>* sub = scratch->Acquire();
      sub->assign(tv->records.begin(), tv->records.end());
      IntersectWith(s, sub, scratch);
    } else {
      // Recurse; the recursive result unions in the records attached at the
      // subtree root (advertisement chains that end at `tv`).
      CandidateSet sub;
      sub.items = scratch->Acquire();
      LookupLevel(tv, query, q.child_begin, q.child_count, &sub, scratch);
      if (!sub.universal) {
        sub.items->insert(sub.items->end(), tv->records.begin(), tv->records.end());
        IntersectWith(s, sub.items, scratch);
      }
      // A universal sub-result means no constraint applied below; S ∩
      // (universal ∪ records) = S.
    }
  }
}

std::vector<const NameRecord*> NameTree::Lookup(const NameSpecifier& query) const {
  thread_local CompiledName compiled;  // reused node capacity across lookups
  CompiledName::ForQueryInto(query, *symbols_, &compiled);
  return Lookup(compiled);
}

namespace {

thread_local NameTree::LookupScratch tls_lookup_scratch;

}  // namespace

std::vector<const NameRecord*> NameTree::Lookup(const CompiledName& query,
                                                LookupScratch* scratch) const {
  LookupScratch* sc = scratch != nullptr ? scratch : &tls_lookup_scratch;
  if (index_ == nullptr) {
    return LookupTreeWalk(query, sc);
  }

  // Plan, from the scratch's memo when this (index state, query) pair was
  // seen before — the hot-destination case the NameDecoder memo feeds.
  const uint64_t qfp = QueryFingerprint(query);
  const QueryPlan* plan = sc->plan_cache_.Find(index_->id(), index_->version(), qfp);
  const bool cache_hit = plan != nullptr;
  if (!cache_hit) {
    QueryPlan* fresh = sc->plan_cache_.Insert(index_->id(), index_->version(), qfp);
    index_->DerivePlan(query, fresh);
    plan = fresh;
  }
  index_->CountOutcome(plan->kind, cache_hit);

  if (plan->NeedsTreeWalk()) {
    return LookupTreeWalk(query, sc);
  }
  std::vector<const NameRecord*> out;
  switch (plan->kind) {
    case QueryPlan::Kind::kUniversal:
      out = AllRecords();
      break;
    case QueryPlan::Kind::kEmpty:
      break;
    case QueryPlan::Kind::kIndex: {
      index_->Evaluate(*plan, &sc->slot_scratch_, &sc->word_scratch_);
      out.reserve(sc->slot_scratch_.size());
      for (uint32_t slot : sc->slot_scratch_) {
        out.push_back(index_->RecordAt(slot));
      }
      std::sort(out.begin(), out.end(), [](const NameRecord* a, const NameRecord* b) {
        return a->announcer < b->announcer;
      });
      break;
    }
    default:
      break;  // fallbacks handled above
  }
  sc->Trim();
  return out;
}

std::vector<const NameRecord*> NameTree::LookupTreeWalk(const CompiledName& query,
                                                        LookupScratch* scratch) const {
  LookupScratch* sc = scratch != nullptr ? scratch : &tls_lookup_scratch;
  sc->Reset();

  CandidateSet s;
  s.items = sc->Acquire();
  LookupLevel(&root_, query, 0, query.root_count(), &s, sc);
  if (s.universal) {
    sc->Trim();
    return AllRecords();
  }
  std::vector<const NameRecord*> out(s.items->begin(), s.items->end());
  std::sort(out.begin(), out.end(), [](const NameRecord* a, const NameRecord* b) {
    return a->announcer < b->announcer;
  });
  sc->Trim();
  return out;
}

void NameTree::LookupScratch::Trim() {
  if (pool_.size() > kMaxRetainedPoolVectors) {
    pool_.resize(kMaxRetainedPoolVectors);
    used_ = std::min(used_, pool_.size());
  }
  for (auto& v : pool_) {
    if (v->capacity() > kMaxRetainedVecEntries) {
      std::vector<const NameRecord*>().swap(*v);
    }
  }
  if (set_slots_.capacity() > kMaxRetainedSetSlots) {
    std::vector<SetSlot>().swap(set_slots_);
    set_gen_ = 0;
  }
  if (slot_scratch_.capacity() > kMaxRetainedSlotEntries) {
    std::vector<uint32_t>().swap(slot_scratch_);
  }
  if (word_scratch_.capacity() > kMaxRetainedSlotEntries) {
    std::vector<uint64_t>().swap(word_scratch_);
  }
}

size_t NameTree::LookupScratch::RetainedBytes() const {
  size_t bytes = set_slots_.capacity() * sizeof(SetSlot) +
                 slot_scratch_.capacity() * sizeof(uint32_t) +
                 word_scratch_.capacity() * sizeof(uint64_t) +
                 pool_.capacity() * sizeof(pool_[0]) + plan_cache_.MemoryBytes();
  for (const auto& v : pool_) {
    bytes += sizeof(*v) + v->capacity() * sizeof(const NameRecord*);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// GET-NAME
//
// The paper augments every value-node with a PTR scratch variable and resets
// the touched ones afterwards; an equivalent side table keeps the tree const.

namespace {

struct ExtractedPair {
  std::string attribute;
  std::string token;
  std::vector<ExtractedPair*> children;
};

struct Extraction {
  std::deque<ExtractedPair> arena;
  ExtractedPair* Alloc(std::string attribute, std::string token) {
    arena.push_back(ExtractedPair{std::move(attribute), std::move(token), {}});
    return &arena.back();
  }
};

void ConvertExtracted(const std::vector<ExtractedPair*>& in, std::vector<AvPair>* out) {
  for (const ExtractedPair* e : in) {
    AvPair* pair = InsertPair(*out, e->attribute, ValueFromToken(e->token));
    ConvertExtracted(e->children, &pair->children);
  }
}

}  // namespace

NameSpecifier NameTree::ExtractName(const NameRecord* record) const {
  Extraction ex;
  ExtractedPair* root_pair = ex.Alloc("", "");
  std::unordered_map<const ValueNode*, ExtractedPair*> ptr;  // the PTR variables
  ptr.emplace(&root_, root_pair);

  // TRACE: walk upward from a leaf value-node until reaching a part of the
  // name-specifier that has already been reconstructed, grafting on the
  // fragment built along the way.
  std::function<void(const ValueNode*, ExtractedPair*)> trace =
      [&](const ValueNode* tv, ExtractedPair* fragment) {
        auto it = ptr.find(tv);
        if (it != ptr.end()) {
          if (fragment != nullptr) {
            it->second->children.push_back(fragment);
          }
          return;
        }
        ExtractedPair* pair =
            ex.Alloc(std::string(symbols_->NameOf(tv->parent_attr->attribute)),
                     std::string(symbols_->NameOf(tv->token)));
        ptr.emplace(tv, pair);
        if (fragment != nullptr) {
          pair->children.push_back(fragment);
        }
        trace(tv->parent_attr->parent, pair);
      };

  for (void* t : record->terminals_) {
    trace(static_cast<const ValueNode*>(t), nullptr);
  }

  NameSpecifier name;
  ConvertExtracted(root_pair->children, &name.mutable_roots());
  return name;
}

// ---------------------------------------------------------------------------
// Bookkeeping

bool NameTree::Remove(const AnnouncerId& id) {
  auto it = records_.find(id);
  if (it == records_.end()) {
    return false;
  }
  IndexRemoveTerms(it->second.get());
  Ungraft(it->second.get());
  if (index_ != nullptr) {
    index_->ReleaseSlot(it->second->slot_);
  }
  records_.erase(it);
  return true;
}

bool NameTree::RefreshExpiry(const AnnouncerId& id, TimePoint expires) {
  auto it = records_.find(id);
  if (it == records_.end()) {
    return false;
  }
  NameRecord* rec = it->second.get();
  if (expires > rec->expires) {
    rec->expires = expires;
    PushExpiry(rec->expires, rec->announcer);
  }
  return true;
}

void NameTree::PushExpiry(TimePoint expires, const AnnouncerId& id) {
  expiry_heap_.emplace_back(expires, id);
  std::push_heap(expiry_heap_.begin(), expiry_heap_.end(),
                 std::greater<std::pair<TimePoint, AnnouncerId>>());
}

size_t NameTree::ExpireBefore(TimePoint now, std::vector<AnnouncerId>* expired) {
  // Every live record has a heap entry at its current deadline (pushed when
  // the deadline was set), so popping entries with deadline < now visits a
  // superset of the expired records: cost is O(expired + stale), never a
  // full-tree walk.
  size_t removed = 0;
  auto cmp = std::greater<std::pair<TimePoint, AnnouncerId>>();
  while (!expiry_heap_.empty() && expiry_heap_.front().first < now) {
    ++expiry_scan_visits_;
    std::pop_heap(expiry_heap_.begin(), expiry_heap_.end(), cmp);
    auto [deadline, id] = expiry_heap_.back();
    expiry_heap_.pop_back();
    auto it = records_.find(id);
    if (it == records_.end()) {
      continue;  // stale: record already removed or renamed away
    }
    if (it->second->expires >= now) {
      continue;  // stale: refreshed since this entry was pushed
    }
    IndexRemoveTerms(it->second.get());
    Ungraft(it->second.get());
    if (index_ != nullptr) {
      index_->ReleaseSlot(it->second->slot_);
    }
    records_.erase(it);
    if (expired != nullptr) {
      expired->push_back(id);
    }
    ++removed;
  }
  return removed;
}

const NameRecord* NameTree::Find(const AnnouncerId& id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : it->second.get();
}

NameRecord* NameTree::FindMutable(const AnnouncerId& id) {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : it->second.get();
}

std::vector<const NameRecord*> NameTree::AllRecords() const {
  std::vector<const NameRecord*> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) {
    out.push_back(rec.get());
  }
  return out;  // std::map iteration is already AnnouncerId-ordered
}

NameTree::Stats NameTree::ComputeStats() const {
  Stats st;
  st.records = records_.size();

  // Node strings live in the symbol table (counted below, once); per node we
  // charge the struct itself plus its flat-map and vector footprints.
  constexpr size_t kMapNode = 72;  // std::map red-black node overhead

  std::function<void(const ValueNode&)> walk_value = [&](const ValueNode& v) {
    st.value_nodes += 1;
    st.bytes += sizeof(ValueNode) + v.attributes.MemoryBytes() +
                v.records.capacity() * sizeof(NameRecord*) +
                v.subtree_cache.capacity() * sizeof(const NameRecord*);
    v.attributes.ForEach([&](SymbolId, const std::unique_ptr<AttributeNode>& child) {
      st.attribute_nodes += 1;
      st.bytes += sizeof(AttributeNode) + child->values.MemoryBytes();
      child->values.ForEach([&](SymbolId, const std::unique_ptr<ValueNode>& grandchild) {
        walk_value(*grandchild);
      });
    });
  };
  walk_value(root_);
  st.value_nodes -= 1;  // do not count the pseudo-root

  for (const auto& [id, rec] : records_) {
    st.bytes += kMapNode + sizeof(NameRecord);
    st.bytes += rec->terminals_.capacity() * sizeof(void*);
    st.bytes += rec->endpoint.bindings.capacity() * sizeof(PortBinding);
    for (const PortBinding& b : rec->endpoint.bindings) {
      st.bytes += b.transport.capacity();
    }
  }
  st.expiry_heap_entries = expiry_heap_.size();
  st.bytes += expiry_heap_.capacity() * sizeof(expiry_heap_[0]);

  if (index_ != nullptr) {
    st.index_bytes = index_->MemoryBytes();
    st.bytes += st.index_bytes;
  }

  // A privately owned intern table is part of this tree's footprint; a
  // shared one is accounted once by the owning ShardedNameTree.
  if (owns_symbols_) {
    st.symbol_bytes = symbols_->MemoryBytes();
    st.bytes += st.symbol_bytes;
  }
  return st;
}

std::string NameTree::DebugString() const {
  std::ostringstream os;
  // Sort children by their resolved strings so the rendering is stable
  // regardless of flat-map slot order.
  std::function<void(const ValueNode&, int)> walk = [&](const ValueNode& v, int indent) {
    std::vector<const AttributeNode*> attrs;
    v.attributes.ForEach([&](SymbolId, const std::unique_ptr<AttributeNode>& child) {
      attrs.push_back(child.get());
    });
    std::sort(attrs.begin(), attrs.end(), [&](const AttributeNode* a, const AttributeNode* b) {
      return symbols_->NameOf(a->attribute) < symbols_->NameOf(b->attribute);
    });
    for (const AttributeNode* child : attrs) {
      os << std::string(static_cast<size_t>(indent) * 2, ' ')
         << symbols_->NameOf(child->attribute) << ":\n";
      std::vector<const ValueNode*> vals;
      child->values.ForEach([&](SymbolId, const std::unique_ptr<ValueNode>& grandchild) {
        vals.push_back(grandchild.get());
      });
      std::sort(vals.begin(), vals.end(), [&](const ValueNode* a, const ValueNode* b) {
        return symbols_->NameOf(a->token) < symbols_->NameOf(b->token);
      });
      for (const ValueNode* grandchild : vals) {
        os << std::string(static_cast<size_t>(indent) * 2 + 2, ' ') << "= "
           << symbols_->NameOf(grandchild->token);
        if (!grandchild->records.empty()) {
          os << "  (" << grandchild->records.size() << " record"
             << (grandchild->records.size() == 1 ? "" : "s") << ")";
        }
        os << "\n";
        walk(*grandchild, indent + 2);
      }
    }
  };
  walk(root_, 0);
  return os.str();
}

Status NameTree::CheckInvariants() const {
  // Every record's terminals must point back at value-nodes that list it.
  std::unordered_map<const ValueNode*, size_t> seen;
  std::function<Status(const ValueNode&)> walk = [&](const ValueNode& v) -> Status {
    Status result = Status::Ok();
    v.attributes.ForEach([&](SymbolId key, const std::unique_ptr<AttributeNode>& child) {
      if (!result.ok()) {
        return;
      }
      const std::string attr(symbols_->NameOf(child->attribute));
      if (child->attribute != key) {
        result = InternalError("attribute-node key mismatch: " + attr);
        return;
      }
      if (child->parent != &v) {
        result = InternalError("attribute-node parent pointer broken at " + attr);
        return;
      }
      if (child->values.empty()) {
        result = InternalError("empty attribute-node not pruned: " + attr);
        return;
      }
      child->values.ForEach([&](SymbolId vkey, const std::unique_ptr<ValueNode>& grandchild) {
        if (!result.ok()) {
          return;
        }
        const std::string val(symbols_->NameOf(grandchild->token));
        if (grandchild->token != vkey) {
          result = InternalError("value-node key mismatch: " + val);
          return;
        }
        if (grandchild->parent_attr != child.get()) {
          result = InternalError("value-node parent pointer broken at " + val);
          return;
        }
        if (grandchild->records.empty() && grandchild->attributes.empty()) {
          result = InternalError("empty value-node not pruned: " + val);
          return;
        }
        // The graft-time numeric cache must agree with a fresh parse.
        std::optional<double> parsed = ParseNumeric(val);
        if (parsed.has_value() != grandchild->has_number ||
            (parsed.has_value() && *parsed != grandchild->number)) {
          result = InternalError("stale cached numeric at value " + val);
          return;
        }
        seen[grandchild.get()] = grandchild->records.size();
        if (options_.cache_subtree_records) {
          if (!std::is_sorted(grandchild->subtree_cache.begin(),
                              grandchild->subtree_cache.end())) {
            result = InternalError("subtree cache not sorted at " + val);
            return;
          }
          std::vector<const NameRecord*> expected;
          // Collect terminals the slow way and compare as multisets.
          std::function<void(const ValueNode&)> gather = [&](const ValueNode& node) {
            expected.insert(expected.end(), node.records.begin(), node.records.end());
            node.attributes.ForEach(
                [&](SymbolId, const std::unique_ptr<AttributeNode>& c2) {
                  c2->values.ForEach(
                      [&](SymbolId, const std::unique_ptr<ValueNode>& g2) { gather(*g2); });
                });
          };
          gather(*grandchild);
          std::sort(expected.begin(), expected.end());
          if (expected != grandchild->subtree_cache) {
            result = InternalError("subtree cache out of sync at " + val);
            return;
          }
        }
        result = walk(*grandchild);
      });
    });
    return result;
  };
  INS_RETURN_IF_ERROR(walk(root_));

  size_t terminal_refs = 0;
  for (const auto& [id, rec] : records_) {
    if (!(id == rec->announcer)) {
      return InternalError("record keyed under wrong announcer: " + id.ToString());
    }
    if (rec->terminals_.empty()) {
      return InternalError("record with no terminals: " + id.ToString());
    }
    for (void* t : rec->terminals_) {
      const auto* tv = static_cast<const ValueNode*>(t);
      auto it = seen.find(tv);
      if (it == seen.end()) {
        return InternalError("record terminal points outside the tree: " + id.ToString());
      }
      if (std::find(tv->records.begin(), tv->records.end(), rec.get()) == tv->records.end()) {
        return InternalError("terminal value-node does not list its record: " + id.ToString());
      }
      ++terminal_refs;
    }
  }
  size_t listed = 0;
  for (const auto& [node, n] : seen) {
    listed += n;
  }
  if (listed != terminal_refs) {
    return InternalError("terminal reference count mismatch: tree lists " +
                         std::to_string(listed) + ", records hold " +
                         std::to_string(terminal_refs));
  }

  // Expiry-heap invariants: heap-ordered, and every live record has an entry
  // at its current deadline (else ExpireBefore could miss it).
  if (!std::is_heap(expiry_heap_.begin(), expiry_heap_.end(),
                    std::greater<std::pair<TimePoint, AnnouncerId>>())) {
    return InternalError("expiry heap order violated");
  }
  for (const auto& [id, rec] : records_) {
    bool covered = false;
    for (const auto& [deadline, hid] : expiry_heap_) {
      if (hid == id && deadline == rec->expires) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      return InternalError("record not covered by expiry heap: " + id.ToString());
    }
  }

  // Posting-index invariants: rebuild the expected maps from the tree (path
  // fingerprints chained root -> leaf; subtree slot sets deduped, a record
  // with several terminals below a node is one posting member) and demand
  // exact key-set and membership equality.
  if (index_ != nullptr) {
    std::unordered_map<uint64_t, std::vector<uint32_t>> expected_sub;
    std::unordered_map<uint64_t, uint32_t> expected_end;
    std::unordered_map<uint64_t, uint32_t> expected_attr;
    // Returns the sorted-unique slot set of the subtree rooted at `v`.
    std::function<std::vector<uint32_t>(const ValueNode&, uint64_t)> walk_index =
        [&](const ValueNode& v, uint64_t fp) -> std::vector<uint32_t> {
      std::vector<uint32_t> slots;
      for (const NameRecord* rec : v.records) {
        slots.push_back(rec->slot_);
      }
      if (!v.records.empty()) {
        expected_end[fp] = static_cast<uint32_t>(v.records.size());
      }
      v.attributes.ForEach([&](SymbolId, const std::unique_ptr<AttributeNode>& child) {
        const uint64_t afp = PostingIndex::AttrFp(fp, child->attribute);
        std::vector<uint32_t> under_attr;
        child->values.ForEach([&](SymbolId, const std::unique_ptr<ValueNode>& grandchild) {
          const uint64_t vfp =
              PostingIndex::ValueFp(fp, child->attribute, grandchild->token);
          std::vector<uint32_t> sub = walk_index(*grandchild, vfp);
          expected_sub[vfp] = sub;
          under_attr.insert(under_attr.end(), sub.begin(), sub.end());
        });
        std::sort(under_attr.begin(), under_attr.end());
        under_attr.erase(std::unique(under_attr.begin(), under_attr.end()),
                         under_attr.end());
        expected_attr[afp] = static_cast<uint32_t>(under_attr.size());
        slots.insert(slots.end(), under_attr.begin(), under_attr.end());
      });
      std::sort(slots.begin(), slots.end());
      slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
      return slots;
    };
    walk_index(root_, PostingIndex::kRootFp);
    for (const auto& [id, rec] : records_) {
      if (rec->slot_ == 0xFFFFFFFFu || index_->RecordAt(rec->slot_) != rec.get()) {
        return InternalError("record slot does not round-trip through the index: " +
                             id.ToString());
      }
    }
    INS_RETURN_IF_ERROR(
        index_->VerifyAgainst(expected_sub, expected_end, expected_attr, records_.size()));
  }
  return Status::Ok();
}

}  // namespace ins
