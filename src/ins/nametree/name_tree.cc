#include "ins/nametree/name_tree.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <functional>
#include <sstream>

namespace ins {

Value ValueFromToken(const std::string& token) {
  if (token == "*") {
    return Value::Wildcard();
  }
  if (!token.empty() && (token[0] == '<' || token[0] == '>')) {
    size_t skip = 1;
    bool or_equal = token.size() > 1 && token[1] == '=';
    if (or_equal) {
      skip = 2;
    }
    std::optional<double> bound = ParseNumeric(std::string_view(token).substr(skip));
    if (bound.has_value()) {
      Value::Kind kind;
      if (token[0] == '<') {
        kind = or_equal ? Value::Kind::kLessEqual : Value::Kind::kLess;
      } else {
        kind = or_equal ? Value::Kind::kGreaterEqual : Value::Kind::kGreater;
      }
      return Value::Range(kind, *bound);
    }
  }
  return Value::Literal(token);
}

NameTree::NameTree(Options options) : options_(options) {
  root_.parent_attr = nullptr;
}

NameTree::~NameTree() = default;

// ---------------------------------------------------------------------------
// Candidate sets

void NameTree::CandidateSet::IntersectWith(std::vector<const NameRecord*> other) {
  std::sort(other.begin(), other.end());
  other.erase(std::unique(other.begin(), other.end()), other.end());
  if (universal) {
    universal = false;
    items = std::move(other);
    return;
  }
  std::vector<const NameRecord*> out;
  out.reserve(std::min(items.size(), other.size()));
  std::set_intersection(items.begin(), items.end(), other.begin(), other.end(),
                        std::back_inserter(out));
  items = std::move(out);
}

// ---------------------------------------------------------------------------
// Graft / ungraft

void NameTree::Graft(ValueNode* parent, const std::vector<AvPair>& pairs, NameRecord* rec) {
  for (const AvPair& p : pairs) {
    std::unique_ptr<AttributeNode>& attr_slot = parent->attributes[p.attribute];
    if (attr_slot == nullptr) {
      attr_slot = std::make_unique<AttributeNode>();
      attr_slot->attribute = p.attribute;
      attr_slot->parent = parent;
    }
    AttributeNode* ta = attr_slot.get();

    const std::string token = p.value.ToToken();
    std::unique_ptr<ValueNode>& value_slot = ta->values[token];
    if (value_slot == nullptr) {
      value_slot = std::make_unique<ValueNode>();
      value_slot->value = token;
      value_slot->parent_attr = ta;
    }
    ValueNode* tv = value_slot.get();

    if (p.children.empty()) {
      tv->records.push_back(rec);
      rec->terminals_.push_back(tv);
      if (options_.cache_subtree_records) {
        AddToAncestorCaches(tv, rec);
      }
    } else {
      Graft(tv, p.children, rec);
    }
  }
}

void NameTree::AddToAncestorCaches(ValueNode* leaf, const NameRecord* rec) {
  for (ValueNode* v = leaf; v != nullptr;
       v = v->parent_attr != nullptr ? v->parent_attr->parent : nullptr) {
    auto& cache = v->subtree_cache;
    cache.insert(std::upper_bound(cache.begin(), cache.end(), rec), rec);
    if (v == &root_) {
      break;
    }
  }
}

void NameTree::RemoveFromAncestorCaches(ValueNode* leaf, const NameRecord* rec) {
  for (ValueNode* v = leaf; v != nullptr;
       v = v->parent_attr != nullptr ? v->parent_attr->parent : nullptr) {
    auto& cache = v->subtree_cache;
    auto it = std::lower_bound(cache.begin(), cache.end(), rec);
    assert(it != cache.end() && *it == rec);
    cache.erase(it);
    if (v == &root_) {
      break;
    }
  }
}

void NameTree::Ungraft(NameRecord* rec) {
  for (void* t : rec->terminals_) {
    auto* tv = static_cast<ValueNode*>(t);
    auto it = std::find(tv->records.begin(), tv->records.end(), rec);
    assert(it != tv->records.end());
    tv->records.erase(it);
    if (options_.cache_subtree_records) {
      RemoveFromAncestorCaches(tv, rec);
    }
    PruneUpward(tv);
  }
  rec->terminals_.clear();
}

void NameTree::PruneUpward(ValueNode* v) {
  while (v != &root_ && v->records.empty() && v->attributes.empty()) {
    AttributeNode* ta = v->parent_attr;
    ta->values.erase(v->value);  // destroys *v
    if (!ta->values.empty()) {
      return;
    }
    ValueNode* up = ta->parent;
    up->attributes.erase(ta->attribute);  // destroys *ta
    v = up;
  }
}

// ---------------------------------------------------------------------------
// Upsert

NameTree::UpsertOutcome NameTree::Upsert(const NameSpecifier& name, const NameRecord& info) {
  assert(!name.empty() && "cannot advertise an empty name-specifier");
  auto it = records_.find(info.announcer);
  if (it == records_.end()) {
    auto rec = std::make_unique<NameRecord>(info);
    rec->terminals_.clear();
    NameRecord* raw = rec.get();
    records_.emplace(info.announcer, std::move(rec));
    Graft(&root_, name.roots(), raw);
    PushExpiry(raw->expires, raw->announcer);
    return {UpsertOutcome::kNew, raw};
  }

  NameRecord* rec = it->second.get();
  if (info.version < rec->version) {
    return {UpsertOutcome::kIgnored, nullptr};
  }

  const bool renamed = !(ExtractName(rec) == name);
  const bool changed = !(rec->endpoint == info.endpoint) || rec->app_metric != info.app_metric ||
                       !(rec->route == info.route);

  rec->endpoint = info.endpoint;
  rec->app_metric = info.app_metric;
  rec->route = info.route;
  rec->version = info.version;
  if (info.expires > rec->expires) {
    rec->expires = info.expires;
    PushExpiry(rec->expires, rec->announcer);  // the older heap entry goes stale
  }

  if (renamed) {
    Ungraft(rec);
    Graft(&root_, name.roots(), rec);
    return {UpsertOutcome::kRenamed, rec};
  }
  return {changed ? UpsertOutcome::kChanged : UpsertOutcome::kRefreshed, rec};
}

// ---------------------------------------------------------------------------
// LOOKUP-NAME

void NameTree::SubtreeRecords(const ValueNode* node,
                              std::vector<const NameRecord*>* out) const {
  if (options_.cache_subtree_records) {
    out->insert(out->end(), node->subtree_cache.begin(), node->subtree_cache.end());
    return;
  }
  out->insert(out->end(), node->records.begin(), node->records.end());
  for (const auto& [attr, child] : node->attributes) {
    SubtreeRecords(child.get(), out);
  }
}

void NameTree::SubtreeRecords(const AttributeNode* node,
                              std::vector<const NameRecord*>* out) const {
  for (const auto& [val, child] : node->values) {
    SubtreeRecords(child.get(), out);
  }
}

void NameTree::LookupLevel(const ValueNode* node, const std::vector<AvPair>& pairs,
                           CandidateSet* s) const {
  for (const AvPair& p : pairs) {
    if (s->Empty()) {
      return;  // intersection can only shrink; nothing left to find
    }
    auto ait = node->attributes.find(p.attribute);
    if (ait == node->attributes.end()) {
      // LOOKUP-NAME: `if Ta = null then continue` — omitted attributes in
      // advertisements are wildcards, so an attribute unknown to the tree
      // does not constrain the candidate set.
      continue;
    }
    const AttributeNode* ta = ait->second.get();

    if (p.value.is_wildcard()) {
      // Union of all records in the subtree rooted at the attribute-node.
      std::vector<const NameRecord*> sub;
      SubtreeRecords(ta, &sub);
      s->IntersectWith(std::move(sub));
      continue;
    }

    if (p.value.is_range()) {
      // Range-selection extension: like a wildcard filtered to the value
      // children whose token numerically satisfies the constraint.
      std::vector<const NameRecord*> sub;
      for (const auto& [token, child] : ta->values) {
        if (p.value.Accepts(token)) {
          SubtreeRecords(child.get(), &sub);
        }
      }
      s->IntersectWith(std::move(sub));
      continue;
    }

    auto vit = ta->values.find(p.value.literal());
    if (vit == ta->values.end()) {
      // The advertised values for this attribute all differ: no match.
      s->IntersectWith({});
      return;
    }
    const ValueNode* tv = vit->second.get();

    if (p.children.empty()) {
      // Query chain ends here: everything at or below this value matches
      // (interior value-nodes "correspond to" all records beneath them).
      std::vector<const NameRecord*> sub;
      SubtreeRecords(tv, &sub);
      s->IntersectWith(std::move(sub));
    } else if (tv->attributes.empty()) {
      // Tree chain ends here: the advertisements' omitted descendants are
      // wildcards, so the records at this leaf satisfy the deeper query.
      s->IntersectWith({tv->records.begin(), tv->records.end()});
    } else {
      // Recurse; the recursive result unions in the records attached at the
      // subtree root (advertisement chains that end at `tv`).
      CandidateSet sub;
      LookupLevel(tv, p.children, &sub);
      if (!sub.universal) {
        std::vector<const NameRecord*> merged = std::move(sub.items);
        merged.insert(merged.end(), tv->records.begin(), tv->records.end());
        s->IntersectWith(std::move(merged));
      }
      // A universal sub-result means no constraint applied below; S ∩
      // (universal ∪ records) = S.
    }
  }
}

std::vector<const NameRecord*> NameTree::Lookup(const NameSpecifier& query) const {
  CandidateSet s;
  LookupLevel(&root_, query.roots(), &s);
  std::vector<const NameRecord*> out;
  if (s.universal) {
    return AllRecords();
  }
  out = std::move(s.items);
  std::sort(out.begin(), out.end(), [](const NameRecord* a, const NameRecord* b) {
    return a->announcer < b->announcer;
  });
  return out;
}

// ---------------------------------------------------------------------------
// GET-NAME
//
// The paper augments every value-node with a PTR scratch variable and resets
// the touched ones afterwards; an equivalent side table keeps the tree const.

namespace {

struct ExtractedPair {
  std::string attribute;
  std::string token;
  std::vector<ExtractedPair*> children;
};

struct Extraction {
  std::deque<ExtractedPair> arena;
  ExtractedPair* Alloc(std::string attribute, std::string token) {
    arena.push_back(ExtractedPair{std::move(attribute), std::move(token), {}});
    return &arena.back();
  }
};

void ConvertExtracted(const std::vector<ExtractedPair*>& in, std::vector<AvPair>* out) {
  for (const ExtractedPair* e : in) {
    AvPair* pair = InsertPair(*out, e->attribute, ValueFromToken(e->token));
    ConvertExtracted(e->children, &pair->children);
  }
}

}  // namespace

NameSpecifier NameTree::ExtractName(const NameRecord* record) const {
  Extraction ex;
  ExtractedPair* root_pair = ex.Alloc("", "");
  std::unordered_map<const ValueNode*, ExtractedPair*> ptr;  // the PTR variables
  ptr.emplace(&root_, root_pair);

  // TRACE: walk upward from a leaf value-node until reaching a part of the
  // name-specifier that has already been reconstructed, grafting on the
  // fragment built along the way.
  std::function<void(const ValueNode*, ExtractedPair*)> trace =
      [&](const ValueNode* tv, ExtractedPair* fragment) {
        auto it = ptr.find(tv);
        if (it != ptr.end()) {
          if (fragment != nullptr) {
            it->second->children.push_back(fragment);
          }
          return;
        }
        ExtractedPair* pair = ex.Alloc(tv->parent_attr->attribute, tv->value);
        ptr.emplace(tv, pair);
        if (fragment != nullptr) {
          pair->children.push_back(fragment);
        }
        trace(tv->parent_attr->parent, pair);
      };

  for (void* t : record->terminals_) {
    trace(static_cast<const ValueNode*>(t), nullptr);
  }

  NameSpecifier name;
  ConvertExtracted(root_pair->children, &name.mutable_roots());
  return name;
}

// ---------------------------------------------------------------------------
// Bookkeeping

bool NameTree::Remove(const AnnouncerId& id) {
  auto it = records_.find(id);
  if (it == records_.end()) {
    return false;
  }
  Ungraft(it->second.get());
  records_.erase(it);
  return true;
}

bool NameTree::RefreshExpiry(const AnnouncerId& id, TimePoint expires) {
  auto it = records_.find(id);
  if (it == records_.end()) {
    return false;
  }
  NameRecord* rec = it->second.get();
  if (expires > rec->expires) {
    rec->expires = expires;
    PushExpiry(rec->expires, rec->announcer);
  }
  return true;
}

void NameTree::PushExpiry(TimePoint expires, const AnnouncerId& id) {
  expiry_heap_.emplace_back(expires, id);
  std::push_heap(expiry_heap_.begin(), expiry_heap_.end(),
                 std::greater<std::pair<TimePoint, AnnouncerId>>());
}

size_t NameTree::ExpireBefore(TimePoint now) {
  // Every live record has a heap entry at its current deadline (pushed when
  // the deadline was set), so popping entries with deadline < now visits a
  // superset of the expired records: cost is O(expired + stale), never a
  // full-tree walk.
  size_t removed = 0;
  auto cmp = std::greater<std::pair<TimePoint, AnnouncerId>>();
  while (!expiry_heap_.empty() && expiry_heap_.front().first < now) {
    ++expiry_scan_visits_;
    std::pop_heap(expiry_heap_.begin(), expiry_heap_.end(), cmp);
    auto [deadline, id] = expiry_heap_.back();
    expiry_heap_.pop_back();
    auto it = records_.find(id);
    if (it == records_.end()) {
      continue;  // stale: record already removed or renamed away
    }
    if (it->second->expires >= now) {
      continue;  // stale: refreshed since this entry was pushed
    }
    Ungraft(it->second.get());
    records_.erase(it);
    ++removed;
  }
  return removed;
}

const NameRecord* NameTree::Find(const AnnouncerId& id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : it->second.get();
}

NameRecord* NameTree::FindMutable(const AnnouncerId& id) {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : it->second.get();
}

std::vector<const NameRecord*> NameTree::AllRecords() const {
  std::vector<const NameRecord*> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) {
    out.push_back(rec.get());
  }
  return out;  // std::map iteration is already AnnouncerId-ordered
}

NameTree::Stats NameTree::ComputeStats() const {
  Stats st;
  st.records = records_.size();

  // Estimated per-element overhead of the node-based hash maps (bucket entry
  // + list node + pointers). Constants match libstdc++'s unordered_map.
  constexpr size_t kHashSlot = 56;
  constexpr size_t kMapNode = 72;  // std::map red-black node overhead

  std::function<void(const ValueNode&)> walk_value = [&](const ValueNode& v) {
    st.value_nodes += 1;
    st.bytes += sizeof(ValueNode) + v.value.capacity() +
                v.records.capacity() * sizeof(NameRecord*) +
                v.subtree_cache.capacity() * sizeof(const NameRecord*);
    for (const auto& [attr, child] : v.attributes) {
      st.attribute_nodes += 1;
      st.bytes += kHashSlot + attr.capacity();  // map key duplicates the name
      st.bytes += sizeof(AttributeNode) + child->attribute.capacity();
      for (const auto& [val, grandchild] : child->values) {
        st.bytes += kHashSlot + val.capacity();
        walk_value(*grandchild);
      }
    }
  };
  walk_value(root_);
  st.value_nodes -= 1;  // do not count the pseudo-root

  for (const auto& [id, rec] : records_) {
    st.bytes += kMapNode + sizeof(NameRecord);
    st.bytes += rec->terminals_.capacity() * sizeof(void*);
    st.bytes += rec->endpoint.bindings.capacity() * sizeof(PortBinding);
    for (const PortBinding& b : rec->endpoint.bindings) {
      st.bytes += b.transport.capacity();
    }
  }
  st.expiry_heap_entries = expiry_heap_.size();
  st.bytes += expiry_heap_.capacity() * sizeof(expiry_heap_[0]);
  return st;
}

std::string NameTree::DebugString() const {
  std::ostringstream os;
  std::function<void(const ValueNode&, int)> walk = [&](const ValueNode& v, int indent) {
    for (const auto& [attr, child] : v.attributes) {
      os << std::string(static_cast<size_t>(indent) * 2, ' ') << attr << ":\n";
      for (const auto& [val, grandchild] : child->values) {
        os << std::string(static_cast<size_t>(indent) * 2 + 2, ' ') << "= " << val;
        if (!grandchild->records.empty()) {
          os << "  (" << grandchild->records.size() << " record"
             << (grandchild->records.size() == 1 ? "" : "s") << ")";
        }
        os << "\n";
        walk(*grandchild, indent + 2);
      }
    }
  };
  walk(root_, 0);
  return os.str();
}

Status NameTree::CheckInvariants() const {
  // Every record's terminals must point back at value-nodes that list it.
  std::unordered_map<const ValueNode*, size_t> seen;
  std::function<Status(const ValueNode&)> walk = [&](const ValueNode& v) -> Status {
    for (const auto& [attr, child] : v.attributes) {
      if (child->attribute != attr) {
        return InternalError("attribute-node key mismatch: " + attr);
      }
      if (child->parent != &v) {
        return InternalError("attribute-node parent pointer broken at " + attr);
      }
      if (child->values.empty()) {
        return InternalError("empty attribute-node not pruned: " + attr);
      }
      for (const auto& [val, grandchild] : child->values) {
        if (grandchild->value != val) {
          return InternalError("value-node key mismatch: " + val);
        }
        if (grandchild->parent_attr != child.get()) {
          return InternalError("value-node parent pointer broken at " + val);
        }
        if (grandchild->records.empty() && grandchild->attributes.empty()) {
          return InternalError("empty value-node not pruned: " + val);
        }
        seen[grandchild.get()] = grandchild->records.size();
        if (options_.cache_subtree_records) {
          if (!std::is_sorted(grandchild->subtree_cache.begin(),
                              grandchild->subtree_cache.end())) {
            return InternalError("subtree cache not sorted at " + val);
          }
          std::vector<const NameRecord*> expected;
          // Collect terminals the slow way and compare as multisets.
          std::function<void(const ValueNode&)> gather = [&](const ValueNode& node) {
            expected.insert(expected.end(), node.records.begin(), node.records.end());
            for (const auto& [a2, c2] : node.attributes) {
              for (const auto& [v2, g2] : c2->values) {
                gather(*g2);
              }
            }
          };
          gather(*grandchild);
          std::sort(expected.begin(), expected.end());
          if (expected != grandchild->subtree_cache) {
            return InternalError("subtree cache out of sync at " + val);
          }
        }
        INS_RETURN_IF_ERROR(walk(*grandchild));
      }
    }
    return Status::Ok();
  };
  INS_RETURN_IF_ERROR(walk(root_));

  size_t terminal_refs = 0;
  for (const auto& [id, rec] : records_) {
    if (!(id == rec->announcer)) {
      return InternalError("record keyed under wrong announcer: " + id.ToString());
    }
    if (rec->terminals_.empty()) {
      return InternalError("record with no terminals: " + id.ToString());
    }
    for (void* t : rec->terminals_) {
      const auto* tv = static_cast<const ValueNode*>(t);
      auto it = seen.find(tv);
      if (it == seen.end()) {
        return InternalError("record terminal points outside the tree: " + id.ToString());
      }
      if (std::find(tv->records.begin(), tv->records.end(), rec.get()) == tv->records.end()) {
        return InternalError("terminal value-node does not list its record: " + id.ToString());
      }
      ++terminal_refs;
    }
  }
  size_t listed = 0;
  for (const auto& [node, n] : seen) {
    listed += n;
  }
  if (listed != terminal_refs) {
    return InternalError("terminal reference count mismatch: tree lists " +
                         std::to_string(listed) + ", records hold " +
                         std::to_string(terminal_refs));
  }

  // Expiry-heap invariants: heap-ordered, and every live record has an entry
  // at its current deadline (else ExpireBefore could miss it).
  if (!std::is_heap(expiry_heap_.begin(), expiry_heap_.end(),
                    std::greater<std::pair<TimePoint, AnnouncerId>>())) {
    return InternalError("expiry heap order violated");
  }
  for (const auto& [id, rec] : records_) {
    bool covered = false;
    for (const auto& [deadline, hid] : expiry_heap_) {
      if (hid == id && deadline == rec->expires) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      return InternalError("record not covered by expiry heap: " + id.ToString());
    }
  }
  return Status::Ok();
}

}  // namespace ins
