#include "ins/transport/timer_wheel.h"

#include <cassert>

namespace ins {

uint32_t TimerWheel::AllocNode() {
  if (!free_nodes_.empty()) {
    uint32_t idx = free_nodes_.back();
    free_nodes_.pop_back();
    pool_[idx].freed = false;
    pool_[idx].cancelled = false;
    pool_[idx].next = kNil;
    return idx;
  }
  pool_.emplace_back();
  Node& n = pool_.back();
  n.freed = false;
  n.cancelled = false;
  return static_cast<uint32_t>(pool_.size() - 1);
}

void TimerWheel::FreeNode(uint32_t idx) {
  Node& n = pool_[idx];
  n.fn = nullptr;
  n.freed = true;
  n.next = kNil;
  ++n.generation;
  free_nodes_.push_back(idx);
}

void TimerWheel::Append(Slot* slot, uint32_t idx) {
  pool_[idx].next = kNil;
  if (slot->head == kNil) {
    slot->head = slot->tail = idx;
  } else {
    pool_[slot->tail].next = idx;
    slot->tail = idx;
  }
}

void TimerWheel::Place(uint32_t idx) {
  Node& n = pool_[idx];
  if (n.due_tick <= current_tick_) {
    Append(&due_, idx);
    ++due_nodes_;
    return;
  }
  const uint64_t delta = n.due_tick - current_tick_;
  int level = 0;
  uint64_t span = kSlotsPerLevel;  // ticks covered by levels 0..level
  while (level + 1 < kLevels && delta >= span) {
    ++level;
    span <<= 8;
  }
  // Beyond the top level's horizon the node is parked in the farthest slot it
  // can reach; each cascade re-places it by its true deadline.
  uint64_t place_tick = n.due_tick;
  if (delta >= span) {
    place_tick = current_tick_ + span - 1;
  }
  const size_t slot_index = (place_tick >> (8 * level)) & (kSlotsPerLevel - 1);
  Append(&slots_[level][slot_index], idx);
  ++level_nodes_[level];
}

uint32_t TimerWheel::Take(Slot* slot) {
  uint32_t head = slot->head;
  slot->head = slot->tail = kNil;
  return head;
}

TaskId TimerWheel::Schedule(TimePoint when, std::function<void()> fn) {
  const uint32_t idx = AllocNode();
  Node& n = pool_[idx];
  n.fn = std::move(fn);
  n.due_tick = TickOf(when);
  Place(idx);
  ++live_;
  return (static_cast<uint64_t>(n.generation) << 32) | (idx + 1);
}

bool TimerWheel::Cancel(TaskId id) {
  const uint64_t low = id & 0xFFFFFFFFu;
  if (low == 0 || low > pool_.size()) {
    return false;
  }
  const uint32_t idx = static_cast<uint32_t>(low - 1);
  Node& n = pool_[idx];
  if (n.freed || n.cancelled || n.generation != static_cast<uint32_t>(id >> 32)) {
    return false;
  }
  // The node stays linked in its slot (no back-pointers to unlink O(1));
  // firing or cascading past the slot reclaims it.
  n.cancelled = true;
  n.fn = nullptr;
  --live_;
  return true;
}

size_t TimerWheel::FireList(uint32_t head) {
  size_t fired = 0;
  uint32_t idx = head;
  while (idx != kNil) {
    Node& n = pool_[idx];
    const uint32_t next = n.next;
    const bool run = !n.cancelled;
    std::function<void()> fn = std::move(n.fn);
    if (run) {
      --live_;
    }
    // Free before firing: the callback may immediately reschedule and reuse
    // this node (the steady-state allocation-free cycle).
    FreeNode(idx);
    if (run) {
      fn();
      ++fired;
    }
    idx = next;
  }
  return fired;
}

void TimerWheel::CascadeLevel(int level) {
  const size_t slot_index = (current_tick_ >> (8 * level)) & (kSlotsPerLevel - 1);
  uint32_t idx = Take(&slots_[level][slot_index]);
  while (idx != kNil) {
    Node& n = pool_[idx];
    const uint32_t next = n.next;
    --level_nodes_[level];
    if (n.cancelled) {
      FreeNode(idx);
    } else {
      Place(idx);
    }
    idx = next;
  }
}

size_t TimerWheel::Advance(TimePoint now) {
  size_t fired = 0;
  if (due_nodes_ > 0) {
    due_nodes_ = 0;
    fired += FireList(Take(&due_));
  }
  const uint64_t target = TickOf(now);
  while (current_tick_ < target) {
    ++current_tick_;
    if ((current_tick_ & (kSlotsPerLevel - 1)) == 0) {
      // A new level-1 epoch; cascade the deepest level that wrapped first so
      // its timers trickle down through the levels below in one pass.
      int deepest = 1;
      while (deepest + 1 < kLevels &&
             ((current_tick_ >> (8 * deepest)) & (kSlotsPerLevel - 1)) == 0) {
        ++deepest;
      }
      for (int level = deepest; level >= 1; --level) {
        CascadeLevel(level);
      }
    }
    const size_t slot_index = current_tick_ & (kSlotsPerLevel - 1);
    uint32_t head = slots_[0][slot_index].head;
    if (head != kNil) {
      size_t drained = 0;
      for (uint32_t i = head; i != kNil; i = pool_[i].next) {
        ++drained;
      }
      level_nodes_[0] -= drained;
      Take(&slots_[0][slot_index]);
      fired += FireList(head);
    }
    // Cascading (or a fired callback) may have queued same-tick work.
    if (due_nodes_ > 0) {
      due_nodes_ = 0;
      fired += FireList(Take(&due_));
    }
  }
  return fired;
}

std::optional<TimePoint> TimerWheel::NextDueBound() const {
  if (due_nodes_ > 0) {
    return TimePoint(static_cast<int64_t>(current_tick_) << kTickShift);
  }
  for (int level = 0; level < kLevels; ++level) {
    if (level_nodes_[level] == 0) {
      continue;
    }
    const uint64_t base = current_tick_ >> (8 * level);
    for (uint64_t k = 1; k <= kSlotsPerLevel; ++k) {
      const Slot& s = slots_[level][(base + k) & (kSlotsPerLevel - 1)];
      if (s.head != kNil) {
        const uint64_t slot_start_tick = (base + k) << (8 * level);
        return TimePoint(static_cast<int64_t>(slot_start_tick) << kTickShift);
      }
    }
  }
  return std::nullopt;
}

}  // namespace ins
