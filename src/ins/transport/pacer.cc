#include "ins/transport/pacer.h"

#include <algorithm>

namespace ins {

Pacer::Pacer(const PacerConfig& config, TimePoint now)
    : config_(config),
      tokens_(static_cast<double>(config.burst_bytes)),
      last_refill_(now) {}

uint64_t Pacer::current_rate() const {
  const double rate = static_cast<double>(config_.rate_bytes_per_sec) *
                      config_.pacing_gain * load_factor_;
  return rate < 1.0 ? 1 : static_cast<uint64_t>(rate);
}

void Pacer::Refill(TimePoint now) {
  if (now <= last_refill_) {
    return;
  }
  const double elapsed_s =
      static_cast<double>((now - last_refill_).count()) / 1e6;
  last_refill_ = now;
  tokens_ = std::min(tokens_ + elapsed_s * static_cast<double>(current_rate()),
                     static_cast<double>(config_.burst_bytes));
}

Duration Pacer::DelayFor(uint64_t bytes, TimePoint now) {
  if (!config_.enabled) {
    return Duration(0);
  }
  Refill(now);
  const double need = static_cast<double>(bytes);
  if (tokens_ >= need) {
    return Duration(0);
  }
  const double deficit = need - tokens_;
  const double wait_us = deficit * 1e6 / static_cast<double>(current_rate());
  // Round up: waking a tick early would re-poll and reschedule.
  return Duration(static_cast<int64_t>(wait_us) + 1);
}

void Pacer::Commit(uint64_t bytes) {
  if (!config_.enabled) {
    return;
  }
  tokens_ -= static_cast<double>(bytes);
  // Bound the debt to one burst so a forced flush cannot stall the pacer
  // arbitrarily far into the future.
  const double floor = -static_cast<double>(config_.burst_bytes);
  if (tokens_ < floor) {
    tokens_ = floor;
  }
}

void Pacer::OnLoadSignal(Duration load) {
  if (load <= config_.load_floor || config_.load_floor.count() <= 0) {
    load_factor_ = 1.0;
    return;
  }
  const double factor = static_cast<double>(config_.load_floor.count()) /
                        static_cast<double>(load.count());
  load_factor_ = std::max(config_.min_rate_fraction, factor);
}

}  // namespace ins
