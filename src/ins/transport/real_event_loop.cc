#include "ins/transport/real_event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>

namespace ins {

namespace {
constexpr int kMaxEvents = 64;
}  // namespace

RealEventLoop::RealEventLoop() : wheel_(clock_.Now()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ >= 0 && wake_fd_ >= 0) {
    struct epoll_event ev = {};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
}

RealEventLoop::~RealEventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

TaskId RealEventLoop::ScheduleAt(TimePoint when, std::function<void()> fn) {
  return wheel_.Schedule(when, std::move(fn));
}

bool RealEventLoop::Cancel(TaskId id) { return wheel_.Cancel(id); }

void RealEventLoop::RegisterFd(int fd, std::function<void()> on_readable) {
  FdEntry& entry = fds_[fd];
  entry.on_readable = std::move(on_readable);
  entry.want_write = false;
  struct epoll_event ev = {};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
}

void RealEventLoop::SetWritableHandler(int fd, std::function<void()> on_writable) {
  auto it = fds_.find(fd);
  if (it != fds_.end()) {
    it->second.on_writable = std::move(on_writable);
  }
}

void RealEventLoop::SetWriteInterest(int fd, bool want_write) {
  auto it = fds_.find(fd);
  if (it == fds_.end() || it->second.want_write == want_write) {
    return;
  }
  it->second.want_write = want_write;
  struct epoll_event ev = {};
  ev.events = EPOLLIN | EPOLLET | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void RealEventLoop::UnregisterFd(int fd) {
  if (fds_.erase(fd) > 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

void RealEventLoop::PollOnce(std::optional<Duration> max_wait) {
  // The poll timeout comes from the earliest timer the wheel could fire
  // (conservative bound: possibly early, never late), clamped by the caller's
  // budget. An idle loop with no timers parks in epoll_wait indefinitely
  // until Stop() pokes the eventfd or a socket becomes readable.
  int timeout_ms = -1;
  const std::optional<TimePoint> due = wheel_.NextDueBound();
  if (due.has_value()) {
    const Duration until = *due - Now();
    const int64_t ms = until.count() <= 0 ? 0 : (until.count() + 999) / 1000;
    timeout_ms = static_cast<int>(ms > 60'000 ? 60'000 : ms);
  }
  if (max_wait.has_value()) {
    const int64_t ms = max_wait->count() <= 0 ? 0 : (max_wait->count() + 999) / 1000;
    const int capped = static_cast<int>(ms > 60'000 ? 60'000 : ms);
    if (timeout_ms < 0 || capped < timeout_ms) {
      timeout_ms = capped;
    }
  }

  struct epoll_event events[kMaxEvents];
  const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
  ++wakeups_;
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_) {
      uint64_t drain = 0;
      while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
      }
      continue;
    }
    if ((events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
      auto it = fds_.find(fd);
      if (it != fds_.end() && it->second.on_readable) {
        // The handler may unregister this (or any) fd; don't hold iterators
        // across the call.
        auto handler = it->second.on_readable;
        handler();
      }
    }
    if ((events[i].events & EPOLLOUT) != 0) {
      auto it = fds_.find(fd);
      if (it != fds_.end() && it->second.want_write && it->second.on_writable) {
        auto handler = it->second.on_writable;
        handler();
      }
    }
  }
  wheel_.Advance(Now());
}

void RealEventLoop::Run() {
  stopped_.store(false, std::memory_order_relaxed);
  while (!stopped_.load(std::memory_order_relaxed)) {
    PollOnce(std::nullopt);
  }
}

void RealEventLoop::RunFor(Duration d) {
  stopped_.store(false, std::memory_order_relaxed);
  const TimePoint deadline = Now() + d;
  while (!stopped_.load(std::memory_order_relaxed)) {
    const Duration remaining = deadline - Now();
    if (remaining.count() <= 0) {
      break;
    }
    PollOnce(remaining);
  }
}

void RealEventLoop::Stop() {
  stopped_.store(true, std::memory_order_relaxed);
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t rc = ::write(wake_fd_, &one, sizeof(one));
  }
}

}  // namespace ins
