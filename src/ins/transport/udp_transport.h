// Real UDP transport: one socket, one syscall per datagram.
//
// The runnable examples deploy INRs, services, and clients as actual UDP
// endpoints on the loopback interface. INS NodeAddresses are virtual: each
// datagram carries a 6-byte virtual-source header (ip, port) and is sent to
// 127.0.0.1:<virtual port>, so a multi-process demo needs no configuration
// beyond distinct ports. All components run single-threaded on one
// RealEventLoop per process. For the batched fast path (sendmmsg/recvmmsg +
// pacing) see batched_udp_transport.h; both speak the same wire format.

#ifndef INS_TRANSPORT_UDP_TRANSPORT_H_
#define INS_TRANSPORT_UDP_TRANSPORT_H_

#include <memory>

#include "ins/common/metrics.h"
#include "ins/common/transport.h"
#include "ins/transport/real_event_loop.h"

namespace ins {

namespace udp_internal {
constexpr size_t kVirtualHeader = 6;  // u32 virtual ip + u16 virtual port
constexpr size_t kMaxDatagram = 65507;

// Opens a non-blocking AF_INET UDP socket bound to 127.0.0.1:<port> with
// enlarged kernel buffers. Returns the fd or a Status.
Result<int> OpenBoundSocket(uint16_t port);
// Writes the 6-byte virtual-source header for `self` into `out`.
void WriteVirtualHeader(const NodeAddress& self, uint8_t* out);
// Parses the header into `src`; false if the frame is too short.
bool ReadVirtualHeader(const uint8_t* data, size_t size, NodeAddress* src);
}  // namespace udp_internal

class UdpTransport : public Transport {
 public:
  // Binds a real UDP socket on 127.0.0.1:<address.port>. The address's ip
  // component is the endpoint's virtual identity.
  static Result<std::unique_ptr<UdpTransport>> Bind(RealEventLoop* loop,
                                                    const NodeAddress& address);
  ~UdpTransport() override;

  // Returns a typed error instead of pretending the datagram left the host:
  // kResourceExhausted when the socket buffer is full (EAGAIN) or the kernel
  // is out of buffers (ENOBUFS), kUnavailable for other socket errors. EINTR
  // is retried. Every failure is counted under transport.drop.*.
  Status Send(const NodeAddress& destination, const Bytes& data) override;
  void SetReceiveHandler(ReceiveHandler handler) override;
  NodeAddress local_address() const override { return address_; }
  void AttachMetrics(MetricsRegistry* metrics) override;

 private:
  UdpTransport(RealEventLoop* loop, NodeAddress address, int fd);
  void OnReadable();
  void RegisterMetrics(MetricsRegistry* metrics);

  RealEventLoop* loop_;
  NodeAddress address_;
  int fd_;
  ReceiveHandler handler_;

  MetricsRegistry own_metrics_;
  CounterHandle sent_datagrams_;
  CounterHandle recv_datagrams_;
  CounterHandle drop_full_;      // transport.drop.backpressure (EAGAIN/ENOBUFS)
  CounterHandle drop_error_;     // transport.drop.error (other errno)
  CounterHandle drop_oversize_;  // transport.drop.oversize
  CounterHandle short_writes_;   // transport.drop.short_write
};

}  // namespace ins

#endif  // INS_TRANSPORT_UDP_TRANSPORT_H_
