// Real UDP transport and a poll(2)-based real-time event loop.
//
// The runnable examples deploy INRs, services, and clients as actual UDP
// endpoints on the loopback interface. INS NodeAddresses are virtual: each
// datagram carries a 6-byte virtual-source header (ip, port) and is sent to
// 127.0.0.1:<virtual port>, so a multi-process demo needs no configuration
// beyond distinct ports. All components run single-threaded on one
// RealEventLoop per process.

#ifndef INS_TRANSPORT_UDP_TRANSPORT_H_
#define INS_TRANSPORT_UDP_TRANSPORT_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "ins/common/clock.h"
#include "ins/common/executor.h"
#include "ins/common/transport.h"

namespace ins {

// Executor + I/O multiplexer over real time.
class RealEventLoop : public Executor, public Clock {
 public:
  RealEventLoop() = default;
  ~RealEventLoop() override = default;

  // Executor:
  TaskId ScheduleAt(TimePoint when, std::function<void()> fn) override;
  bool Cancel(TaskId id) override;
  TimePoint Now() const override { return clock_.Now(); }

  // File-descriptor readiness callbacks (level-triggered readable).
  void RegisterFd(int fd, std::function<void()> on_readable);
  void UnregisterFd(int fd);

  // Polls I/O and runs due timers until Stop() is called.
  void Run();
  // Runs for (approximately) the given real duration; handy for examples.
  void RunFor(Duration d);
  void Stop() { stopped_ = true; }

 private:
  void PollOnce(Duration max_wait);
  void RunDueTimers();

  RealClock clock_;
  std::atomic<bool> stopped_{false};
  TaskId next_id_ = 1;
  std::map<std::pair<TimePoint, TaskId>, std::function<void()>> timers_;
  std::unordered_map<TaskId, TimePoint> timer_index_;
  std::unordered_map<int, std::function<void()>> fds_;
};

class UdpTransport : public Transport {
 public:
  // Binds a real UDP socket on 127.0.0.1:<address.port>. The address's ip
  // component is the endpoint's virtual identity.
  static Result<std::unique_ptr<UdpTransport>> Bind(RealEventLoop* loop,
                                                    const NodeAddress& address);
  ~UdpTransport() override;

  Status Send(const NodeAddress& destination, const Bytes& data) override;
  void SetReceiveHandler(ReceiveHandler handler) override;
  NodeAddress local_address() const override { return address_; }

 private:
  UdpTransport(RealEventLoop* loop, NodeAddress address, int fd);
  void OnReadable();

  RealEventLoop* loop_;
  NodeAddress address_;
  int fd_;
  ReceiveHandler handler_;
};

}  // namespace ins

#endif  // INS_TRANSPORT_UDP_TRANSPORT_H_
