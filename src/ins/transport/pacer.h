// Rate-based send pacer for the batched UDP fast path.
//
// Replication digests and update fan-out leave the resolver in bursts; fired
// straight into a loopback (or real) socket they overrun the receiver's
// buffer long before the link is saturated. The pacer smooths those bursts
// the way the FreeBSD RACK/BBR stacks pace TCP: a token bucket refilled at
// `rate_bytes_per_sec * pacing_gain` with a bounded burst budget, so short
// bursts go out immediately and sustained load is spaced at the configured
// rate. The pacing gain (>1) deliberately overshoots the nominal rate so
// pacing never becomes the bottleneck when the path has headroom.
//
// The owning node feeds its AdmissionController load signal (smoothed
// queueing delay) back via OnLoadSignal(): once the node's queueing delay
// exceeds `load_floor`, the effective rate is reduced hyperbolically
// (factor = load_floor / load, floored at `min_rate_fraction`), trading
// throughput for keeping the resolver's own queues short.

#ifndef INS_TRANSPORT_PACER_H_
#define INS_TRANSPORT_PACER_H_

#include <cstdint>

#include "ins/common/clock.h"

namespace ins {

struct PacerConfig {
  bool enabled = false;
  uint64_t rate_bytes_per_sec = 64ull * 1024 * 1024;  // nominal send rate
  uint64_t burst_bytes = 256 * 1024;                  // bucket depth
  double pacing_gain = 1.25;                          // RACK/BBR-style overshoot
  // Load-feedback knee: below this queueing delay the node is healthy and
  // the pacer runs at full rate; above it the rate backs off hyperbolically.
  Duration load_floor = Milliseconds(5);
  double min_rate_fraction = 0.125;  // back-off floor (never fully stall)
};

class Pacer {
 public:
  Pacer(const PacerConfig& config, TimePoint now);

  // How long the caller must wait before `bytes` may be sent (zero = now).
  // Pure query: refills the bucket to `now` but consumes nothing.
  Duration DelayFor(uint64_t bytes, TimePoint now);

  // Debits the bucket for bytes actually handed to the kernel.
  void Commit(uint64_t bytes);

  // AdmissionController feedback (see file comment).
  void OnLoadSignal(Duration load);

  bool enabled() const { return config_.enabled; }
  // Effective refill rate after gain and load feedback, bytes/sec.
  uint64_t current_rate() const;
  double load_factor() const { return load_factor_; }

 private:
  void Refill(TimePoint now);

  PacerConfig config_;
  double tokens_;        // bytes available; may go negative after Commit
  TimePoint last_refill_;
  double load_factor_ = 1.0;
};

}  // namespace ins

#endif  // INS_TRANSPORT_PACER_H_
