#include "ins/transport/loopback.h"

#include <cassert>

namespace ins {

LoopbackNetwork::~LoopbackNetwork() {
  assert(endpoints_.empty() && "endpoints must not outlive the LoopbackNetwork");
}

std::unique_ptr<LoopbackNetwork::Endpoint> LoopbackNetwork::Bind(const NodeAddress& address) {
  assert(endpoints_.find(address) == endpoints_.end());
  auto ep = std::unique_ptr<Endpoint>(new Endpoint(this, address));
  endpoints_[address] = ep.get();
  return ep;
}

void LoopbackNetwork::SetBlackhole(const NodeAddress& address, bool blackholed) {
  blackholed_[address] = blackholed;
}

void LoopbackNetwork::Deliver(const NodeAddress& src, const NodeAddress& dst,
                              const Bytes& data) {
  auto bh = blackholed_.find(dst);
  if (bh != blackholed_.end() && bh->second) {
    ++dropped_;
    return;
  }
  auto it = endpoints_.find(dst);
  if (it == endpoints_.end() || it->second->handler_ == nullptr) {
    ++dropped_;
    return;
  }
  ++delivered_;
  Endpoint* ep = it->second;
  if (executor_ != nullptr) {
    executor_->ScheduleAfter(Duration(0), [this, src, dst, copy = data]() {
      auto eit = endpoints_.find(dst);
      if (eit != endpoints_.end() && eit->second->handler_ != nullptr) {
        eit->second->handler_(src, copy);
      }
    });
  } else {
    ep->handler_(src, data);
  }
}

LoopbackNetwork::Endpoint::~Endpoint() {
  auto it = net_->endpoints_.find(address_);
  if (it != net_->endpoints_.end() && it->second == this) {
    net_->endpoints_.erase(it);
  }
}

Status LoopbackNetwork::Endpoint::Send(const NodeAddress& destination, const Bytes& data) {
  net_->Deliver(address_, destination, data);
  return Status::Ok();
}

void LoopbackNetwork::Endpoint::SetReceiveHandler(ReceiveHandler handler) {
  handler_ = std::move(handler);
}

}  // namespace ins
