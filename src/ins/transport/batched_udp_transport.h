// Batched real-socket fast path: sendmmsg/recvmmsg + pacing.
//
// Speaks exactly the UdpTransport wire format (6-byte virtual-source header,
// loopback delivery to 127.0.0.1:<virtual port>) but amortizes syscalls and
// eliminates per-packet allocation:
//
//   * Send() copies the frame into a preallocated transmit slot and enqueues
//     its index on a fixed ring — no heap traffic. Slots are flushed with one
//     sendmmsg per batch; since each mmsghdr carries its own destination
//     address, one batch spans destinations in arrival order (no reordering).
//   * Runs of consecutive equal-length datagrams to one destination collapse
//     into a single UDP_SEGMENT (GSO) superpacket — one skb through the
//     kernel instead of one per datagram — and the receive socket enables
//     UDP_GRO so such runs arrive re-coalesced and are split back into
//     datagrams in user space. Both are transparent framing: every datagram
//     on the wire is byte-identical to the unbatched transport's, and both
//     sides degrade to plain sendmmsg/recvmmsg at runtime if the kernel
//     refuses the options.
//   * A full batch flushes inline; a partial batch waits up to `flush_delay`
//     for coalescing (scheduled on the event loop's timer wheel, whose nodes
//     are pooled — still no allocation).
//   * Inbound traffic drains with recvmmsg into a preallocated buffer ring;
//     the payload handed to the receive handler reuses one scratch buffer
//     whose capacity persists, so steady state does not allocate either.
//   * When the kernel pushes back (EAGAIN/ENOBUFS, partial sendmmsg) the
//     queue holds the datagrams and EPOLLOUT resumes the flush; when the
//     queue itself fills, Send() fails typed (kResourceExhausted) and the
//     drop is counted — bounded backpressure, never silent loss.
//   * An optional Pacer spaces flushes at a configured rate, with the owning
//     node's admission load signal feeding back into that rate.

#ifndef INS_TRANSPORT_BATCHED_UDP_TRANSPORT_H_
#define INS_TRANSPORT_BATCHED_UDP_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ins/common/metrics.h"
#include "ins/common/transport.h"
#include "ins/transport/pacer.h"
#include "ins/transport/real_event_loop.h"

namespace ins {

struct BatchedUdpConfig {
  size_t batch_size = 32;   // datagrams per sendmmsg/recvmmsg call
  size_t max_queue = 4096;  // transmit slots; the backpressure bound
  // How long a partial batch may wait for coalescing before it is flushed.
  Duration flush_delay = Microseconds(200);
  // Collapse runs of equal-length same-destination datagrams into one
  // UDP_SEGMENT superpacket (and accept UDP_GRO coalesced buffers). Falls
  // back to plain sendmmsg at runtime if the kernel rejects the option.
  bool gso = true;
  PacerConfig pacer;
};

class BatchedUdpTransport : public Transport {
 public:
  // Frames at most this long (header + payload) ride the zero-allocation
  // slot path; longer ones fall back to a direct sendto.
  static constexpr size_t kTxSlotBytes = 2048;

  static Result<std::unique_ptr<BatchedUdpTransport>> Bind(
      RealEventLoop* loop, const NodeAddress& address,
      const BatchedUdpConfig& config = {});
  ~BatchedUdpTransport() override;

  // Enqueues the datagram; kResourceExhausted once `max_queue` datagrams are
  // waiting (counted under transport.drop.backpressure).
  Status Send(const NodeAddress& destination, const Bytes& data) override;
  void SetReceiveHandler(ReceiveHandler handler) override;
  NodeAddress local_address() const override { return address_; }
  void AttachMetrics(MetricsRegistry* metrics) override;
  void OnLoadSignal(Duration load) override { pacer_.OnLoadSignal(load); }

  // Sends everything queued, ignoring the coalescing window (still paced and
  // still subject to kernel backpressure). Tests and shutdown paths use it.
  void FlushNow();

  size_t queued() const { return ring_count_; }
  const Pacer& pacer() const { return pacer_; }

 private:
  struct TxSlot {
    uint8_t data[kTxSlotBytes];
    uint32_t len = 0;
    uint16_t dest_port = 0;
  };

  BatchedUdpTransport(RealEventLoop* loop, NodeAddress address, int fd,
                      const BatchedUdpConfig& config);
  void RegisterMetrics(MetricsRegistry* metrics);

  // Sends as many full batches as pacing and the kernel allow; arranges a
  // timer or EPOLLOUT continuation for whatever remains.
  void Flush(bool force);
  void ScheduleFlush(Duration delay);
  void OnWritable();
  void OnReadable();
  void DispatchDatagram(const uint8_t* buf, size_t len);
  Status SendOversize(const NodeAddress& destination, const Bytes& data);

  // Fixed-capacity FIFO of transmit-slot indices (capacity max_queue + 1).
  uint32_t RingPop();
  void RingPush(uint32_t slot);

  RealEventLoop* loop_;
  NodeAddress address_;
  int fd_;
  BatchedUdpConfig config_;
  ReceiveHandler handler_;
  Pacer pacer_;

  // Transmit side: slot pool + free stack + pending ring.
  std::vector<TxSlot> tx_slots_;
  std::vector<uint32_t> free_slots_;
  std::vector<uint32_t> ring_;  // circular buffer of pending slot indices
  size_t ring_head_ = 0;
  size_t ring_count_ = 0;
  TaskId flush_task_ = kInvalidTaskId;
  bool write_blocked_ = false;

  // Whether sends may still use UDP_SEGMENT; cleared on the first kernel
  // rejection so every later flush goes straight to plain sendmmsg.
  bool gso_enabled_ = false;

  // Receive side: preallocated recvmmsg buffers (+ per-message control space
  // for the UDP_GRO segment-size cmsg) and one reusable payload.
  std::vector<std::vector<uint8_t>> rx_bufs_;
  std::vector<char> rx_cmsg_;
  Bytes rx_scratch_;

  MetricsRegistry own_metrics_;
  CounterHandle sent_datagrams_;
  CounterHandle recv_datagrams_;
  CounterHandle send_batches_;
  CounterHandle recv_batches_;
  CounterHandle drop_full_;        // transport.drop.backpressure
  CounterHandle drop_error_;       // transport.drop.error
  CounterHandle drop_oversize_;    // transport.drop.oversize
  CounterHandle oversize_direct_;  // transport.send.oversize_direct
  CounterHandle write_blocks_;     // transport.send.write_blocked
  CounterHandle pacer_delays_;     // transport.pacer.delays
  CounterHandle gso_batches_;      // transport.send.gso_batches
  CounterHandle gro_splits_;       // transport.recv.gro_splits
  HistogramHandle batch_fill_;     // transport.send.batch_fill
};

}  // namespace ins

#endif  // INS_TRANSPORT_BATCHED_UDP_TRANSPORT_H_
