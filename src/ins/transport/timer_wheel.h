// Hierarchical hashed timer wheel for the real-time event loop.
//
// The previous RealEventLoop kept its timers in a std::map ordered by
// (deadline, id): O(log n) insert/cancel, one tree-node allocation per
// schedule, and pointer-chasing on every poll. A resolver under load
// schedules and cancels timers constantly (flush ticks, retransmit budgets,
// soft-state refresh), so the real-socket fast path replaces the map with the
// classic kernel structure: four levels of 256 slots at a 1.024 ms tick.
// Insert and cancel are O(1); a tick fires exactly the slot that came due and
// cascades one higher-level slot per 256-tick epoch. Timer nodes live in a
// pooled free list and TaskIds embed (slot index, generation), so a
// steady-state schedule/fire/cancel cycle performs no heap allocation — a
// prerequisite for the transport's zero-allocation hot path, which schedules
// a flush task per batch.
//
// Single-threaded, like the loop that owns it. Callbacks fired by Advance()
// may freely Schedule() and Cancel() on the same wheel; they must not call
// Advance() reentrantly.

#ifndef INS_TRANSPORT_TIMER_WHEEL_H_
#define INS_TRANSPORT_TIMER_WHEEL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "ins/common/clock.h"
#include "ins/common/executor.h"

namespace ins {

class TimerWheel {
 public:
  static constexpr int kLevels = 4;
  static constexpr uint64_t kSlotsPerLevel = 256;
  static constexpr int kTickShift = 10;  // 1 tick = 1024 us (~1 ms)

  explicit TimerWheel(TimePoint now) : current_tick_(TickOf(now)) {}

  // Registers `fn` to fire once Advance() reaches `when`. A deadline at or
  // before the wheel's current position fires on the next Advance().
  TaskId Schedule(TimePoint when, std::function<void()> fn);

  // Returns false if the timer already fired or was already cancelled.
  bool Cancel(TaskId id);

  // Fires every timer due at or before `now`, in tick order (order within one
  // 1 ms tick is insertion order per slot, not global). Returns count fired.
  size_t Advance(TimePoint now);

  // Earliest instant any live timer could be due, or nullopt when the wheel
  // is empty. The bound is conservative: it may be earlier than the true
  // deadline (higher levels are slot-granular), never later — a caller using
  // it as a poll timeout can wake early and re-poll, but never oversleeps.
  std::optional<TimePoint> NextDueBound() const;

  size_t live() const { return live_; }
  // Pool occupancy (free + in-use nodes): tests pin that steady-state
  // schedule/fire cycles reuse nodes instead of growing the pool.
  size_t pool_size() const { return pool_.size(); }

 private:
  static constexpr uint32_t kNil = UINT32_MAX;

  struct Node {
    std::function<void()> fn;
    uint64_t due_tick = 0;
    uint32_t generation = 0;
    uint32_t next = kNil;
    bool cancelled = false;
    bool freed = true;
  };

  struct Slot {
    uint32_t head = kNil;
    uint32_t tail = kNil;
  };

  static uint64_t TickOf(TimePoint t) {
    int64_t us = t.count();
    return us <= 0 ? 0 : static_cast<uint64_t>(us) >> kTickShift;
  }

  uint32_t AllocNode();
  void FreeNode(uint32_t idx);
  void Append(Slot* slot, uint32_t idx);
  // Places a live node into the slot its due_tick maps to from
  // current_tick_; deadlines at or before the current tick go to due_.
  void Place(uint32_t idx);
  // Detaches a slot's list and returns its head.
  uint32_t Take(Slot* slot);
  // Fires (or discards, if cancelled) every node in the detached list.
  size_t FireList(uint32_t head);
  // Re-places every node of the level-`level` slot indexed by current_tick_.
  void CascadeLevel(int level);

  uint64_t current_tick_;
  size_t live_ = 0;
  // Deque: node pointers/indices stay valid as the pool grows mid-fire.
  std::deque<Node> pool_;
  std::vector<uint32_t> free_nodes_;
  Slot slots_[kLevels][kSlotsPerLevel];
  size_t level_nodes_[kLevels] = {0, 0, 0, 0};
  Slot due_;  // already-due timers, fired first by the next Advance()
  size_t due_nodes_ = 0;
};

}  // namespace ins

#endif  // INS_TRANSPORT_TIMER_WHEEL_H_
