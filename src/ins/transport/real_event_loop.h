// Epoll-driven executor + I/O multiplexer over real time.
//
// This is the event loop under every real-socket deployment (examples,
// realnet tests, the UDP benches). It replaces the demo-grade poll(2) loop:
//
//   * readiness via epoll in edge-triggered mode — callbacks must drain their
//     fd until EAGAIN (both UDP transports do), so one wakeup handles an
//     arbitrarily deep socket buffer without re-arming costs;
//   * timers in a hierarchical timer wheel (O(1) schedule/cancel, pooled
//     nodes) instead of a std::map;
//   * the poll timeout is computed from the earliest due timer, so an idle
//     process sleeps until there is actual work instead of waking on a fixed
//     granularity; Stop() is wired through an eventfd and interrupts an
//     arbitrarily long sleep;
//   * transports can register write-interest (EPOLLOUT) to resume a flush
//     after the kernel socket buffer filled (bounded backpressure).
//
// Single-threaded like the sim loop: all scheduling and I/O callbacks run on
// the thread inside Run()/RunFor(). Stop() alone may be called from another
// thread.

#ifndef INS_TRANSPORT_REAL_EVENT_LOOP_H_
#define INS_TRANSPORT_REAL_EVENT_LOOP_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "ins/common/clock.h"
#include "ins/common/executor.h"
#include "ins/transport/timer_wheel.h"

struct epoll_event;

namespace ins {

class RealEventLoop : public Executor, public Clock {
 public:
  RealEventLoop();
  ~RealEventLoop() override;

  RealEventLoop(const RealEventLoop&) = delete;
  RealEventLoop& operator=(const RealEventLoop&) = delete;

  // Executor:
  TaskId ScheduleAt(TimePoint when, std::function<void()> fn) override;
  bool Cancel(TaskId id) override;
  TimePoint Now() const override { return clock_.Now(); }

  // File-descriptor readiness. Registration is edge-triggered: `on_readable`
  // MUST drain the fd until EAGAIN or it will never be called again for the
  // data already queued.
  void RegisterFd(int fd, std::function<void()> on_readable);
  // Optional EPOLLOUT callback for `fd` (which must already be registered).
  // Only delivered while write interest is enabled.
  void SetWritableHandler(int fd, std::function<void()> on_writable);
  // Toggles EPOLLOUT interest; used by transports blocked on a full socket
  // buffer. No-op if the interest already matches.
  void SetWriteInterest(int fd, bool want_write);
  void UnregisterFd(int fd);

  // Polls I/O and runs due timers until Stop() is called.
  void Run();
  // Runs for (approximately) the given real duration.
  void RunFor(Duration d);
  void Stop();

  // Number of epoll wakeups since construction: tests pin that an idle loop
  // sleeps until its next timer instead of polling on a fixed granularity.
  uint64_t poll_wakeups() const { return wakeups_; }
  size_t pending_timers() const { return wheel_.live(); }

 private:
  struct FdEntry {
    std::function<void()> on_readable;
    std::function<void()> on_writable;
    bool want_write = false;
  };

  // One epoll_wait bounded by `max_wait` (nullopt = until the next timer or
  // fd event, indefinitely if neither exists), then runs due timers.
  void PollOnce(std::optional<Duration> max_wait);

  RealClock clock_;
  std::atomic<bool> stopped_{false};
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  TimerWheel wheel_;
  std::unordered_map<int, FdEntry> fds_;
  uint64_t wakeups_ = 0;
};

}  // namespace ins

#endif  // INS_TRANSPORT_REAL_EVENT_LOOP_H_
