// Real-transport selection by TransportKind.
//
// Examples and benches pick their wire path with one flag: kUdp for the
// one-syscall-per-datagram transport, kBatchedUdp for the sendmmsg/recvmmsg
// fast path. kSim is rejected here — sim endpoints are created by
// sim::Network, which owns virtual time; there is nothing to bind.

#ifndef INS_TRANSPORT_FACTORY_H_
#define INS_TRANSPORT_FACTORY_H_

#include <memory>
#include <string>

#include "ins/common/transport.h"
#include "ins/transport/batched_udp_transport.h"
#include "ins/transport/real_event_loop.h"

namespace ins {

// Binds a real socket transport of the requested kind on
// 127.0.0.1:<address.port>.
Result<std::unique_ptr<Transport>> MakeRealTransport(
    TransportKind kind, RealEventLoop* loop, const NodeAddress& address,
    const BatchedUdpConfig& batched_config = {});

// "udp" / "batched" / "sim" → TransportKind, for command-line flags.
Result<TransportKind> ParseTransportKind(const std::string& name);
const char* TransportKindName(TransportKind kind);

}  // namespace ins

#endif  // INS_TRANSPORT_FACTORY_H_
