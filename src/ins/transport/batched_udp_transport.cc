// sendmmsg/recvmmsg need _GNU_SOURCE; must precede every libc include.
#ifndef _GNU_SOURCE
#define _GNU_SOURCE 1
#endif

#include "ins/transport/batched_udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/udp.h>
#include <sys/socket.h>
#include <unistd.h>

// Older libc headers may lack the GSO/GRO socket options (kernel >= 4.18).
#ifndef UDP_SEGMENT
#define UDP_SEGMENT 103
#endif
#ifndef UDP_GRO
#define UDP_GRO 104
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>

#include "ins/transport/udp_transport.h"

namespace ins {

namespace {

using udp_internal::kMaxDatagram;
using udp_internal::kVirtualHeader;

// recvmmsg drains this many datagrams per syscall. Buffers must fit a
// maximal datagram, so this also bounds the preallocated receive memory
// (32 * 64 KiB = 2 MiB per transport).
constexpr size_t kRxBatch = 32;
constexpr size_t kRxBufBytes = 65536;
constexpr size_t kMaxSendBatch = 64;

// Kernel caps on one GSO superpacket: UDP_MAX_SEGMENTS segments, and the
// linearized payload must still fit a UDP datagram.
constexpr size_t kMaxGsoSegments = 64;
constexpr size_t kMaxGsoBytes = 65535;
constexpr size_t kRxCmsgSpace = CMSG_SPACE(sizeof(int));

void FillSockaddr(uint16_t port, sockaddr_in* sa) {
  std::memset(sa, 0, sizeof(*sa));
  sa->sin_family = AF_INET;
  sa->sin_port = htons(port);
  sa->sin_addr.s_addr = htonl(INADDR_LOOPBACK);
}

}  // namespace

Result<std::unique_ptr<BatchedUdpTransport>> BatchedUdpTransport::Bind(
    RealEventLoop* loop, const NodeAddress& address, const BatchedUdpConfig& config) {
  if (config.batch_size == 0 || config.max_queue < config.batch_size) {
    return InvalidArgumentError("BatchedUdpConfig: need 0 < batch_size <= max_queue");
  }
  Result<int> fd = udp_internal::OpenBoundSocket(address.port);
  if (!fd.ok()) {
    return fd.status();
  }
  auto t = std::unique_ptr<BatchedUdpTransport>(
      new BatchedUdpTransport(loop, address, *fd, config));
  loop->RegisterFd(*fd, [raw = t.get()] { raw->OnReadable(); });
  loop->SetWritableHandler(*fd, [raw = t.get()] { raw->OnWritable(); });
  return t;
}

BatchedUdpTransport::BatchedUdpTransport(RealEventLoop* loop, NodeAddress address,
                                         int fd, const BatchedUdpConfig& config)
    : loop_(loop), address_(address), fd_(fd), config_(config),
      pacer_(config.pacer, loop->Now()) {
  if (config_.batch_size > kMaxSendBatch) {
    config_.batch_size = kMaxSendBatch;
  }
  tx_slots_.resize(config_.max_queue);
  free_slots_.reserve(config_.max_queue);
  for (size_t i = config_.max_queue; i > 0; --i) {
    free_slots_.push_back(static_cast<uint32_t>(i - 1));
  }
  ring_.resize(config_.max_queue + 1);
  rx_bufs_.resize(kRxBatch);
  for (auto& buf : rx_bufs_) {
    buf.resize(kRxBufBytes);
  }
  rx_cmsg_.resize(kRxBatch * kRxCmsgSpace);
  rx_scratch_.reserve(kRxBufBytes);
  if (config_.gso) {
    gso_enabled_ = true;
    // GRO is best-effort: without it runs still arrive as individual
    // datagrams, just without the coalescing win on the receive side.
    int one = 1;
    ::setsockopt(fd_, IPPROTO_UDP, UDP_GRO, &one, sizeof(one));
  }
  RegisterMetrics(&own_metrics_);
}

BatchedUdpTransport::~BatchedUdpTransport() {
  if (flush_task_ != kInvalidTaskId) {
    loop_->Cancel(flush_task_);
  }
  loop_->UnregisterFd(fd_);
  ::close(fd_);
}

void BatchedUdpTransport::RegisterMetrics(MetricsRegistry* metrics) {
  sent_datagrams_ = metrics->RegisterCounter("transport.send.datagrams");
  recv_datagrams_ = metrics->RegisterCounter("transport.recv.datagrams");
  send_batches_ = metrics->RegisterCounter("transport.send.batches");
  recv_batches_ = metrics->RegisterCounter("transport.recv.batches");
  drop_full_ = metrics->RegisterCounter("transport.drop.backpressure");
  drop_error_ = metrics->RegisterCounter("transport.drop.error");
  drop_oversize_ = metrics->RegisterCounter("transport.drop.oversize");
  oversize_direct_ = metrics->RegisterCounter("transport.send.oversize_direct");
  write_blocks_ = metrics->RegisterCounter("transport.send.write_blocked");
  pacer_delays_ = metrics->RegisterCounter("transport.pacer.delays");
  gso_batches_ = metrics->RegisterCounter("transport.send.gso_batches");
  gro_splits_ = metrics->RegisterCounter("transport.recv.gro_splits");
  batch_fill_ = metrics->RegisterHistogram("transport.send.batch_fill");
}

void BatchedUdpTransport::AttachMetrics(MetricsRegistry* metrics) {
  RegisterMetrics(metrics != nullptr ? metrics : &own_metrics_);
}

uint32_t BatchedUdpTransport::RingPop() {
  const uint32_t slot = ring_[ring_head_];
  ring_head_ = (ring_head_ + 1) % ring_.size();
  --ring_count_;
  return slot;
}

void BatchedUdpTransport::RingPush(uint32_t slot) {
  ring_[(ring_head_ + ring_count_) % ring_.size()] = slot;
  ++ring_count_;
}

Status BatchedUdpTransport::Send(const NodeAddress& destination, const Bytes& data) {
  const size_t frame_len = kVirtualHeader + data.size();
  if (frame_len > kMaxDatagram) {
    drop_oversize_.Increment();
    return InvalidArgumentError("datagram too large: " + std::to_string(data.size()));
  }
  if (frame_len > kTxSlotBytes) {
    return SendOversize(destination, data);
  }
  if (free_slots_.empty()) {
    // The queue is the backpressure bound; a forced flush here could recurse
    // into the kernel while it is already pushing back, so fail typed and
    // let the caller's retry/soft-state machinery handle it.
    drop_full_.Increment();
    return ResourceExhaustedError("batched udp queue full (" +
                                  std::to_string(config_.max_queue) + " datagrams)");
  }
  const uint32_t slot_index = free_slots_.back();
  free_slots_.pop_back();
  TxSlot& slot = tx_slots_[slot_index];
  udp_internal::WriteVirtualHeader(address_, slot.data);
  std::memcpy(slot.data + kVirtualHeader, data.data(), data.size());
  slot.len = static_cast<uint32_t>(frame_len);
  slot.dest_port = destination.port;
  RingPush(slot_index);

  if (ring_count_ >= config_.batch_size) {
    Flush(/*force=*/false);
  } else if (flush_task_ == kInvalidTaskId && !write_blocked_) {
    ScheduleFlush(config_.flush_delay);
  }
  return Status::Ok();
}

Status BatchedUdpTransport::SendOversize(const NodeAddress& destination,
                                         const Bytes& data) {
  // Rare control-plane case (> kTxSlotBytes frame): bypass the slot ring
  // with a direct sendto. Queued smaller datagrams flush first to keep
  // per-destination ordering.
  Flush(/*force=*/true);
  uint8_t frame[kMaxDatagram];
  udp_internal::WriteVirtualHeader(address_, frame);
  std::memcpy(frame + kVirtualHeader, data.data(), data.size());
  sockaddr_in sa;
  FillSockaddr(destination.port, &sa);
  ssize_t sent;
  do {
    sent = ::sendto(fd_, frame, kVirtualHeader + data.size(), 0,
                    reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  } while (sent < 0 && errno == EINTR);
  if (sent < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
      drop_full_.Increment();
      return ResourceExhaustedError("udp send backpressure: " +
                                    std::string(std::strerror(errno)));
    }
    drop_error_.Increment();
    return UnavailableError("sendto " + destination.ToString() + ": " +
                            std::strerror(errno));
  }
  oversize_direct_.Increment();
  sent_datagrams_.Increment();
  return Status::Ok();
}

void BatchedUdpTransport::ScheduleFlush(Duration delay) {
  flush_task_ = loop_->ScheduleAfter(delay, [this] {
    flush_task_ = kInvalidTaskId;
    Flush(/*force=*/true);
  });
}

void BatchedUdpTransport::OnWritable() {
  write_blocked_ = false;
  loop_->SetWriteInterest(fd_, false);
  Flush(/*force=*/true);
}

void BatchedUdpTransport::Flush(bool force) {
  if (write_blocked_) {
    return;  // EPOLLOUT will resume us
  }
  mmsghdr hdrs[kMaxSendBatch];
  iovec iovs[kMaxSendBatch];
  sockaddr_in dests[kMaxSendBatch];
  char cmsg_bufs[kMaxSendBatch][CMSG_SPACE(sizeof(uint16_t))];
  size_t group_slots[kMaxSendBatch];  // datagrams carried by each mmsghdr

  while (ring_count_ >= (force ? 1 : config_.batch_size)) {
    const size_t want = ring_count_ < config_.batch_size ? ring_count_ : config_.batch_size;
    uint64_t batch_bytes = 0;
    for (size_t i = 0; i < want; ++i) {
      const TxSlot& slot = tx_slots_[ring_[(ring_head_ + i) % ring_.size()]];
      batch_bytes += slot.len;
    }
    if (pacer_.enabled()) {
      const Duration delay = pacer_.DelayFor(batch_bytes, loop_->Now());
      if (delay.count() > 0) {
        pacer_delays_.Increment();
        if (flush_task_ == kInvalidTaskId) {
          ScheduleFlush(delay);
        }
        return;
      }
    }
    // One mmsghdr per wire group. A group is a run of consecutive datagrams
    // with the same destination and length — with GSO those collapse into a
    // single UDP_SEGMENT superpacket (one skb through the kernel); without
    // it every group is a single datagram. Runs only, so arrival order is
    // preserved across destinations.
    std::memset(hdrs, 0, want * sizeof(mmsghdr));
    size_t ngroups = 0;
    bool any_multi = false;
    for (size_t i = 0; i < want;) {
      TxSlot& first = tx_slots_[ring_[(ring_head_ + i) % ring_.size()]];
      size_t run = 1;
      if (gso_enabled_) {
        const size_t max_run =
            std::min({want - i, kMaxGsoSegments, kMaxGsoBytes / first.len});
        while (run < max_run) {
          const TxSlot& next =
              tx_slots_[ring_[(ring_head_ + i + run) % ring_.size()]];
          if (next.dest_port != first.dest_port || next.len != first.len) {
            break;
          }
          ++run;
        }
      }
      const size_t g = ngroups++;
      group_slots[g] = run;
      FillSockaddr(first.dest_port, &dests[g]);
      for (size_t j = 0; j < run; ++j) {
        TxSlot& slot = tx_slots_[ring_[(ring_head_ + i + j) % ring_.size()]];
        iovs[i + j].iov_base = slot.data;
        iovs[i + j].iov_len = slot.len;
      }
      hdrs[g].msg_hdr.msg_name = &dests[g];
      hdrs[g].msg_hdr.msg_namelen = sizeof(dests[g]);
      hdrs[g].msg_hdr.msg_iov = &iovs[i];
      hdrs[g].msg_hdr.msg_iovlen = run;
      if (run > 1) {
        any_multi = true;
        std::memset(cmsg_bufs[g], 0, sizeof(cmsg_bufs[g]));
        hdrs[g].msg_hdr.msg_control = cmsg_bufs[g];
        hdrs[g].msg_hdr.msg_controllen = sizeof(cmsg_bufs[g]);
        cmsghdr* cm = CMSG_FIRSTHDR(&hdrs[g].msg_hdr);
        cm->cmsg_level = SOL_UDP;
        cm->cmsg_type = UDP_SEGMENT;
        cm->cmsg_len = CMSG_LEN(sizeof(uint16_t));
        const uint16_t seg = static_cast<uint16_t>(first.len);
        std::memcpy(CMSG_DATA(cm), &seg, sizeof(seg));
      }
      i += run;
    }
    int sent;
    do {
      sent = ::sendmmsg(fd_, hdrs, static_cast<unsigned>(ngroups), 0);
    } while (sent < 0 && errno == EINTR);
    if (sent < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
        // Kernel pushback: keep everything queued and resume on EPOLLOUT.
        write_blocks_.Increment();
        write_blocked_ = true;
        loop_->SetWriteInterest(fd_, true);
        return;
      }
      if (any_multi && gso_enabled_) {
        // This kernel (or this path) rejects UDP_SEGMENT: degrade to plain
        // sendmmsg for good and retry the same datagrams, still queued.
        gso_enabled_ = false;
        continue;
      }
      // Non-transient socket error: drop this batch so the queue cannot
      // wedge permanently, and count every datagram lost.
      drop_error_.Increment(static_cast<uint64_t>(want));
      for (size_t i = 0; i < want; ++i) {
        free_slots_.push_back(RingPop());
      }
      continue;
    }
    uint64_t committed = 0;
    uint64_t committed_datagrams = 0;
    for (int g = 0; g < sent; ++g) {
      for (size_t j = 0; j < group_slots[g]; ++j) {
        committed += tx_slots_[ring_[ring_head_]].len;
        free_slots_.push_back(RingPop());
        ++committed_datagrams;
      }
      if (group_slots[g] > 1) {
        gso_batches_.Increment();
      }
    }
    pacer_.Commit(committed);
    sent_datagrams_.Increment(committed_datagrams);
    send_batches_.Increment();
    batch_fill_.Record(committed_datagrams);
    if (static_cast<size_t>(sent) < ngroups) {
      // Partial batch: the kernel ran out of buffer mid-call.
      write_blocks_.Increment();
      write_blocked_ = true;
      loop_->SetWriteInterest(fd_, true);
      return;
    }
  }
  if (ring_count_ > 0 && flush_task_ == kInvalidTaskId) {
    ScheduleFlush(config_.flush_delay);
  }
}

void BatchedUdpTransport::FlushNow() {
  if (flush_task_ != kInvalidTaskId) {
    loop_->Cancel(flush_task_);
    flush_task_ = kInvalidTaskId;
  }
  Flush(/*force=*/true);
}

void BatchedUdpTransport::SetReceiveHandler(ReceiveHandler handler) {
  handler_ = std::move(handler);
}

void BatchedUdpTransport::DispatchDatagram(const uint8_t* buf, size_t len) {
  NodeAddress src;
  if (!udp_internal::ReadVirtualHeader(buf, len, &src) || handler_ == nullptr) {
    return;
  }
  recv_datagrams_.Increment();
  rx_scratch_.assign(buf + kVirtualHeader, buf + len);
  handler_(src, rx_scratch_);
}

void BatchedUdpTransport::OnReadable() {
  // Edge-triggered: drain until EAGAIN. All receive state is preallocated;
  // the only per-packet work is one memcpy into the reused scratch payload.
  mmsghdr hdrs[kRxBatch];
  iovec iovs[kRxBatch];
  for (;;) {
    std::memset(hdrs, 0, sizeof(hdrs));
    for (size_t i = 0; i < kRxBatch; ++i) {
      iovs[i].iov_base = rx_bufs_[i].data();
      iovs[i].iov_len = kRxBufBytes;
      hdrs[i].msg_hdr.msg_iov = &iovs[i];
      hdrs[i].msg_hdr.msg_iovlen = 1;
      hdrs[i].msg_hdr.msg_control = rx_cmsg_.data() + i * kRxCmsgSpace;
      hdrs[i].msg_hdr.msg_controllen = kRxCmsgSpace;
    }
    int n;
    do {
      n = ::recvmmsg(fd_, hdrs, kRxBatch, 0, nullptr);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      return;  // EAGAIN: drained
    }
    recv_batches_.Increment();
    for (int i = 0; i < n; ++i) {
      const uint8_t* buf = rx_bufs_[static_cast<size_t>(i)].data();
      const size_t len = hdrs[i].msg_len;
      // A GRO-coalesced buffer carries several equal-length wire datagrams
      // back to back (the last may be shorter); the segment size rides in a
      // UDP_GRO cmsg. Split it back into datagrams before dispatch.
      size_t seg = 0;
      for (cmsghdr* cm = CMSG_FIRSTHDR(&hdrs[i].msg_hdr); cm != nullptr;
           cm = CMSG_NXTHDR(&hdrs[i].msg_hdr, cm)) {
        if (cm->cmsg_level == SOL_UDP && cm->cmsg_type == UDP_GRO) {
          int gro = 0;
          std::memcpy(&gro, CMSG_DATA(cm), sizeof(gro));
          seg = gro > 0 ? static_cast<size_t>(gro) : 0;
        }
      }
      if (seg == 0 || seg >= len) {
        DispatchDatagram(buf, len);
        continue;
      }
      gro_splits_.Increment();
      for (size_t off = 0; off < len; off += seg) {
        DispatchDatagram(buf + off, std::min(seg, len - off));
      }
    }
    if (static_cast<size_t>(n) < kRxBatch) {
      return;  // fewer than asked: the queue is empty
    }
  }
}

}  // namespace ins
