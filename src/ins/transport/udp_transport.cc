#include "ins/transport/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "ins/common/logging.h"

namespace ins {

// --- RealEventLoop -----------------------------------------------------------

TaskId RealEventLoop::ScheduleAt(TimePoint when, std::function<void()> fn) {
  if (when < Now()) {
    when = Now();
  }
  TaskId id = next_id_++;
  timers_.emplace(std::make_pair(when, id), std::move(fn));
  timer_index_.emplace(id, when);
  return id;
}

bool RealEventLoop::Cancel(TaskId id) {
  auto it = timer_index_.find(id);
  if (it == timer_index_.end()) {
    return false;
  }
  timers_.erase(std::make_pair(it->second, id));
  timer_index_.erase(it);
  return true;
}

void RealEventLoop::RegisterFd(int fd, std::function<void()> on_readable) {
  fds_[fd] = std::move(on_readable);
}

void RealEventLoop::UnregisterFd(int fd) { fds_.erase(fd); }

void RealEventLoop::RunDueTimers() {
  while (!timers_.empty() && timers_.begin()->first.first <= Now()) {
    auto it = timers_.begin();
    std::function<void()> fn = std::move(it->second);
    timer_index_.erase(it->first.second);
    timers_.erase(it);
    fn();
  }
}

void RealEventLoop::PollOnce(Duration max_wait) {
  Duration wait = max_wait;
  if (!timers_.empty()) {
    Duration until_timer = timers_.begin()->first.first - Now();
    if (until_timer < wait) {
      wait = until_timer;
    }
  }
  if (wait.count() < 0) {
    wait = Duration(0);
  }

  std::vector<pollfd> pfds;
  pfds.reserve(fds_.size());
  for (const auto& [fd, cb] : fds_) {
    pfds.push_back(pollfd{fd, POLLIN, 0});
  }
  int timeout_ms = static_cast<int>((wait.count() + 999) / 1000);
  int n = ::poll(pfds.empty() ? nullptr : pfds.data(),
                 static_cast<nfds_t>(pfds.size()), timeout_ms);
  if (n > 0) {
    for (const pollfd& p : pfds) {
      if ((p.revents & POLLIN) != 0) {
        auto it = fds_.find(p.fd);
        if (it != fds_.end()) {
          it->second();
        }
      }
    }
  }
  RunDueTimers();
}

void RealEventLoop::Run() {
  stopped_ = false;
  while (!stopped_) {
    PollOnce(Milliseconds(100));
  }
}

void RealEventLoop::RunFor(Duration d) {
  stopped_ = false;
  TimePoint deadline = Now() + d;
  while (!stopped_ && Now() < deadline) {
    Duration remaining = deadline - Now();
    PollOnce(std::min(remaining, Milliseconds(100)));
  }
}

// --- UdpTransport ------------------------------------------------------------

namespace {
constexpr size_t kVirtualHeader = 6;  // u32 virtual ip + u16 virtual port
constexpr size_t kMaxDatagram = 65507;
}  // namespace

Result<std::unique_ptr<UdpTransport>> UdpTransport::Bind(RealEventLoop* loop,
                                                         const NodeAddress& address) {
  int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return InternalError(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(address.port);
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return UnavailableError("bind(127.0.0.1:" + std::to_string(address.port) +
                            "): " + std::strerror(errno));
  }
  auto t = std::unique_ptr<UdpTransport>(new UdpTransport(loop, address, fd));
  loop->RegisterFd(fd, [raw = t.get()] { raw->OnReadable(); });
  return t;
}

UdpTransport::UdpTransport(RealEventLoop* loop, NodeAddress address, int fd)
    : loop_(loop), address_(address), fd_(fd) {}

UdpTransport::~UdpTransport() {
  loop_->UnregisterFd(fd_);
  ::close(fd_);
}

Status UdpTransport::Send(const NodeAddress& destination, const Bytes& data) {
  if (data.size() + kVirtualHeader > kMaxDatagram) {
    return InvalidArgumentError("datagram too large: " + std::to_string(data.size()));
  }
  Bytes framed;
  framed.reserve(kVirtualHeader + data.size());
  framed.push_back(static_cast<uint8_t>(address_.ip >> 24));
  framed.push_back(static_cast<uint8_t>(address_.ip >> 16));
  framed.push_back(static_cast<uint8_t>(address_.ip >> 8));
  framed.push_back(static_cast<uint8_t>(address_.ip));
  framed.push_back(static_cast<uint8_t>(address_.port >> 8));
  framed.push_back(static_cast<uint8_t>(address_.port));
  framed.insert(framed.end(), data.begin(), data.end());

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(destination.port);
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ssize_t sent = ::sendto(fd_, framed.data(), framed.size(), 0,
                          reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (sent < 0) {
    // Best-effort, like UDP: log and continue.
    INS_LOG(kDebug) << "sendto " << destination.ToString() << ": " << std::strerror(errno);
  }
  return Status::Ok();
}

void UdpTransport::SetReceiveHandler(ReceiveHandler handler) {
  handler_ = std::move(handler);
}

void UdpTransport::OnReadable() {
  uint8_t buf[kMaxDatagram];
  for (;;) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      break;  // EAGAIN or a transient error; poll will call us again
    }
    if (static_cast<size_t>(n) < kVirtualHeader || handler_ == nullptr) {
      continue;
    }
    NodeAddress src;
    src.ip = static_cast<uint32_t>(buf[0]) << 24 | static_cast<uint32_t>(buf[1]) << 16 |
             static_cast<uint32_t>(buf[2]) << 8 | static_cast<uint32_t>(buf[3]);
    src.port = static_cast<uint16_t>(static_cast<uint16_t>(buf[4]) << 8 | buf[5]);
    Bytes data(buf + kVirtualHeader, buf + n);
    handler_(src, data);
  }
}

}  // namespace ins
