#include "ins/transport/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace ins {

namespace udp_internal {

Result<int> OpenBoundSocket(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return InternalError(std::string("socket(): ") + std::strerror(errno));
  }
  // Deep kernel buffers: the bench floods loopback far past the 212 KiB
  // default, and a resolver handling a burst should absorb it rather than
  // shed at the socket. Best effort — the kernel clamps to rmem_max/wmem_max.
  const int kBufBytes = 4 * 1024 * 1024;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &kBufBytes, sizeof(kBufBytes));
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &kBufBytes, sizeof(kBufBytes));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return UnavailableError("bind(127.0.0.1:" + std::to_string(port) + "): " + err);
  }
  return fd;
}

void WriteVirtualHeader(const NodeAddress& self, uint8_t* out) {
  out[0] = static_cast<uint8_t>(self.ip >> 24);
  out[1] = static_cast<uint8_t>(self.ip >> 16);
  out[2] = static_cast<uint8_t>(self.ip >> 8);
  out[3] = static_cast<uint8_t>(self.ip);
  out[4] = static_cast<uint8_t>(self.port >> 8);
  out[5] = static_cast<uint8_t>(self.port);
}

bool ReadVirtualHeader(const uint8_t* data, size_t size, NodeAddress* src) {
  if (size < kVirtualHeader) {
    return false;
  }
  src->ip = static_cast<uint32_t>(data[0]) << 24 | static_cast<uint32_t>(data[1]) << 16 |
            static_cast<uint32_t>(data[2]) << 8 | static_cast<uint32_t>(data[3]);
  src->port = static_cast<uint16_t>(static_cast<uint16_t>(data[4]) << 8 | data[5]);
  return true;
}

}  // namespace udp_internal

using udp_internal::kMaxDatagram;
using udp_internal::kVirtualHeader;

Result<std::unique_ptr<UdpTransport>> UdpTransport::Bind(RealEventLoop* loop,
                                                         const NodeAddress& address) {
  Result<int> fd = udp_internal::OpenBoundSocket(address.port);
  if (!fd.ok()) {
    return fd.status();
  }
  auto t = std::unique_ptr<UdpTransport>(new UdpTransport(loop, address, *fd));
  loop->RegisterFd(*fd, [raw = t.get()] { raw->OnReadable(); });
  return t;
}

UdpTransport::UdpTransport(RealEventLoop* loop, NodeAddress address, int fd)
    : loop_(loop), address_(address), fd_(fd) {
  RegisterMetrics(&own_metrics_);
}

UdpTransport::~UdpTransport() {
  loop_->UnregisterFd(fd_);
  ::close(fd_);
}

void UdpTransport::RegisterMetrics(MetricsRegistry* metrics) {
  sent_datagrams_ = metrics->RegisterCounter("transport.send.datagrams");
  recv_datagrams_ = metrics->RegisterCounter("transport.recv.datagrams");
  drop_full_ = metrics->RegisterCounter("transport.drop.backpressure");
  drop_error_ = metrics->RegisterCounter("transport.drop.error");
  drop_oversize_ = metrics->RegisterCounter("transport.drop.oversize");
  short_writes_ = metrics->RegisterCounter("transport.drop.short_write");
}

void UdpTransport::AttachMetrics(MetricsRegistry* metrics) {
  RegisterMetrics(metrics != nullptr ? metrics : &own_metrics_);
}

Status UdpTransport::Send(const NodeAddress& destination, const Bytes& data) {
  if (data.size() + kVirtualHeader > kMaxDatagram) {
    drop_oversize_.Increment();
    return InvalidArgumentError("datagram too large: " + std::to_string(data.size()));
  }
  uint8_t frame[kMaxDatagram];
  udp_internal::WriteVirtualHeader(address_, frame);
  std::memcpy(frame + kVirtualHeader, data.data(), data.size());
  const size_t frame_len = kVirtualHeader + data.size();

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(destination.port);
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ssize_t sent;
  do {
    sent = ::sendto(fd_, frame, frame_len, 0, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  } while (sent < 0 && errno == EINTR);
  if (sent < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
      drop_full_.Increment();
      return ResourceExhaustedError("udp send backpressure: " +
                                    std::string(std::strerror(errno)));
    }
    drop_error_.Increment();
    return UnavailableError("sendto " + destination.ToString() + ": " +
                            std::strerror(errno));
  }
  if (static_cast<size_t>(sent) != frame_len) {
    // UDP never truncates a datagram it accepts, but keep the invariant
    // observable rather than assumed.
    short_writes_.Increment();
    return UnavailableError("short udp write: " + std::to_string(sent) + "/" +
                            std::to_string(frame_len));
  }
  sent_datagrams_.Increment();
  return Status::Ok();
}

void UdpTransport::SetReceiveHandler(ReceiveHandler handler) {
  handler_ = std::move(handler);
}

void UdpTransport::OnReadable() {
  // Edge-triggered registration: drain until EAGAIN.
  uint8_t buf[kMaxDatagram];
  for (;;) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // EAGAIN: fully drained
    }
    NodeAddress src;
    if (!udp_internal::ReadVirtualHeader(buf, static_cast<size_t>(n), &src) ||
        handler_ == nullptr) {
      continue;
    }
    recv_datagrams_.Increment();
    Bytes data(buf + kVirtualHeader, buf + n);
    handler_(src, data);
  }
}

}  // namespace ins
