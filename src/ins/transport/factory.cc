#include "ins/transport/factory.h"

#include "ins/transport/udp_transport.h"

namespace ins {

Result<std::unique_ptr<Transport>> MakeRealTransport(
    TransportKind kind, RealEventLoop* loop, const NodeAddress& address,
    const BatchedUdpConfig& batched_config) {
  switch (kind) {
    case TransportKind::kUdp: {
      Result<std::unique_ptr<UdpTransport>> t = UdpTransport::Bind(loop, address);
      if (!t.ok()) {
        return t.status();
      }
      return std::unique_ptr<Transport>(std::move(*t));
    }
    case TransportKind::kBatchedUdp: {
      Result<std::unique_ptr<BatchedUdpTransport>> t =
          BatchedUdpTransport::Bind(loop, address, batched_config);
      if (!t.ok()) {
        return t.status();
      }
      return std::unique_ptr<Transport>(std::move(*t));
    }
    case TransportKind::kSim:
      break;
  }
  return InvalidArgumentError("sim transports are created via sim::Network, not bound");
}

Result<TransportKind> ParseTransportKind(const std::string& name) {
  if (name == "sim") {
    return TransportKind::kSim;
  }
  if (name == "udp") {
    return TransportKind::kUdp;
  }
  if (name == "batched" || name == "batched-udp") {
    return TransportKind::kBatchedUdp;
  }
  return InvalidArgumentError("unknown transport \"" + name +
                              "\" (want sim|udp|batched)");
}

const char* TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kSim:
      return "sim";
    case TransportKind::kUdp:
      return "udp";
    case TransportKind::kBatchedUdp:
      return "batched";
  }
  return "?";
}

}  // namespace ins
