// In-process loopback transport for unit tests: a registry of endpoints with
// synchronous (or executor-deferred) delivery and optional fault injection.

#ifndef INS_TRANSPORT_LOOPBACK_H_
#define INS_TRANSPORT_LOOPBACK_H_

#include <memory>
#include <unordered_map>

#include "ins/common/executor.h"
#include "ins/common/transport.h"

namespace ins {

class LoopbackNetwork {
 public:
  // If an executor is given, deliveries are deferred through it (preserving
  // run-to-completion semantics); otherwise they are synchronous.
  explicit LoopbackNetwork(Executor* executor = nullptr) : executor_(executor) {}
  ~LoopbackNetwork();

  class Endpoint;
  std::unique_ptr<Endpoint> Bind(const NodeAddress& address);

  // Drops every datagram addressed to `address` while true (fault injection).
  void SetBlackhole(const NodeAddress& address, bool blackholed);

  uint64_t delivered_count() const { return delivered_; }
  uint64_t dropped_count() const { return dropped_; }

  class Endpoint : public Transport {
   public:
    ~Endpoint() override;
    Status Send(const NodeAddress& destination, const Bytes& data) override;
    void SetReceiveHandler(ReceiveHandler handler) override;
    NodeAddress local_address() const override { return address_; }

   private:
    friend class LoopbackNetwork;
    Endpoint(LoopbackNetwork* net, NodeAddress address) : net_(net), address_(address) {}
    LoopbackNetwork* net_;
    NodeAddress address_;
    ReceiveHandler handler_;
  };

 private:
  friend class Endpoint;
  void Deliver(const NodeAddress& src, const NodeAddress& dst, const Bytes& data);

  Executor* executor_;
  std::unordered_map<NodeAddress, Endpoint*, NodeAddressHash> endpoints_;
  std::unordered_map<NodeAddress, bool, NodeAddressHash> blackholed_;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace ins

#endif  // INS_TRANSPORT_LOOPBACK_H_
