// Synthetic name-specifier workloads.
//
// The paper's evaluation (§5.1) uses uniformly grown name-specifiers
// parameterized by:
//   d   — one-half the depth of name-specifiers (attr+value layers per level)
//   r_a — range of possible attributes at each level
//   r_v — range of possible values per attribute
//   n_a — actual number of attributes per level in a specifier
// with Figure 12/13 fixing r_a=3, r_v=3, n_a=2, d=3. Figures 8 and 15 use
// randomly generated names averaging 82 bytes of wire text. This module
// generates both, deterministically from a seeded Rng.

#ifndef INS_WORKLOAD_NAMEGEN_H_
#define INS_WORKLOAD_NAMEGEN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "ins/common/rng.h"
#include "ins/name/name_specifier.h"

namespace ins {

struct UniformNameParams {
  size_t ra = 3;  // possible attributes per level
  size_t rv = 3;  // possible values per attribute
  size_t na = 2;  // attributes actually present per level (na <= ra)
  size_t d = 3;   // levels of av-pairs
};

// Paper defaults for Figures 12 and 13.
inline constexpr UniformNameParams kPaperLookupParams{3, 3, 2, 3};

// Generates one uniformly grown name-specifier: at each of d levels, na
// distinct attributes drawn from the level's pool of ra, each bound to one of
// rv values, recursing under every pair.
NameSpecifier GenerateUniformName(Rng& rng, const UniformNameParams& params);

// As above but with n_a = 1 below the first level trimmed — used to vary
// specifier shapes in property sweeps.
NameSpecifier GenerateChainName(Rng& rng, size_t depth, size_t ra, size_t rv);

// Generates a random service-style name whose canonical text form is close
// to `target_bytes` (default: the paper's 82-byte advertisement names used in
// the Figure 8 and Figure 15 experiments). The name always carries a root
// [vspace=<vspace>] pair when `vspace` is non-empty.
NameSpecifier GenerateSizedName(Rng& rng, size_t target_bytes = 82,
                                const std::string& vspace = "");

// Derives a random query from an advertisement: keeps each av-pair with
// probability `keep_prob`, replaces kept leaf values by a wildcard with
// probability `wildcard_prob`. The result always matches the advertisement.
NameSpecifier DeriveQuery(Rng& rng, const NameSpecifier& advertisement, double keep_prob,
                          double wildcard_prob);

}  // namespace ins

#endif  // INS_WORKLOAD_NAMEGEN_H_
