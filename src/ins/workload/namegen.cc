#include "ins/workload/namegen.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace ins {

namespace {

std::string AttrToken(size_t level, uint64_t i) {
  return "a" + std::to_string(level) + "_" + std::to_string(i);
}

std::string ValToken(uint64_t i) { return "v" + std::to_string(i); }

// Picks `k` distinct integers in [0, n) uniformly (partial Fisher-Yates).
std::vector<uint64_t> PickDistinct(Rng& rng, size_t k, size_t n) {
  assert(k <= n);
  std::vector<uint64_t> pool(n);
  for (size_t i = 0; i < n; ++i) {
    pool[i] = i;
  }
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(rng.NextBelow(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

void GrowUniform(Rng& rng, const UniformNameParams& p, size_t level,
                 std::vector<AvPair>* siblings) {
  if (level >= p.d) {
    return;
  }
  for (uint64_t ai : PickDistinct(rng, p.na, p.ra)) {
    AvPair* pair = InsertPair(*siblings, AttrToken(level, ai),
                              Value::Literal(ValToken(rng.NextBelow(p.rv))));
    GrowUniform(rng, p, level + 1, &pair->children);
  }
}

}  // namespace

NameSpecifier GenerateUniformName(Rng& rng, const UniformNameParams& params) {
  assert(params.na <= params.ra);
  NameSpecifier n;
  GrowUniform(rng, params, 0, &n.mutable_roots());
  return n;
}

NameSpecifier GenerateChainName(Rng& rng, size_t depth, size_t ra, size_t rv) {
  NameSpecifier n;
  std::vector<AvPair>* level = &n.mutable_roots();
  for (size_t i = 0; i < depth; ++i) {
    AvPair* pair = InsertPair(*level, AttrToken(i, rng.NextBelow(ra)),
                              Value::Literal(ValToken(rng.NextBelow(rv))));
    level = &pair->children;
  }
  return n;
}

NameSpecifier GenerateSizedName(Rng& rng, size_t target_bytes, const std::string& vspace) {
  NameSpecifier n;
  if (!vspace.empty()) {
    n.AddPath({{"vspace", vspace}});
  }
  // Service-shaped skeleton, then pad with orthogonal pairs until the wire
  // text reaches the target size.
  const char* kServices[] = {"camera", "printer", "locator", "sensor", "display"};
  n.AddPath({{"service", kServices[rng.NextBelow(5)]},
             {"id", "n" + std::to_string(rng.NextU64() % 100000)}});
  n.AddPath({{"room", std::to_string(400 + rng.NextBelow(200))}});
  size_t i = 0;
  while (n.WireSize() + 12 <= target_bytes) {
    n.AddPath({{"x" + std::to_string(i), "y" + std::to_string(rng.NextBelow(1000))}});
    ++i;
  }
  return n;
}

namespace {

void DerivePairs(Rng& rng, const std::vector<AvPair>& adv, double keep_prob,
                 double wildcard_prob, bool force_keep_one, std::vector<AvPair>* out) {
  bool kept_any = false;
  for (const AvPair& a : adv) {
    bool keep = rng.NextBool(keep_prob);
    if (!keep && force_keep_one && !kept_any && &a == &adv.back()) {
      keep = true;  // guarantee a non-empty query at the top level
    }
    if (!keep) {
      continue;
    }
    kept_any = true;
    if (rng.NextBool(wildcard_prob)) {
      InsertPair(*out, a.attribute, Value::Wildcard());
      // Av-pairs below a wildcard are ignored by LOOKUP-NAME; emit none.
      continue;
    }
    AvPair* pair = InsertPair(*out, a.attribute, a.value);
    DerivePairs(rng, a.children, keep_prob, wildcard_prob, false, &pair->children);
  }
}

}  // namespace

NameSpecifier DeriveQuery(Rng& rng, const NameSpecifier& advertisement, double keep_prob,
                          double wildcard_prob) {
  NameSpecifier q;
  DerivePairs(rng, advertisement.roots(), keep_prob, wildcard_prob, true,
              &q.mutable_roots());
  return q;
}

}  // namespace ins
