// Parser for the name-specifier wire text (paper Figure 3).
//
// Grammar (whitespace permitted anywhere except inside tokens):
//   specifier := av-pair*
//   av-pair   := '[' attribute ( op value )? av-pair* ']'
//   op        := '=' | '<' | '<=' | '>' | '>='
//   value     := '*' | token
//   attribute := token
//   token     := one or more characters excluding whitespace and [ ] = < > *
//
// A bare `[attr]` (no value, as in the paper's `[location]`) parses as a
// wildcard value. `=` with `*` is the explicit wildcard. The relational
// operators are the paper's announced range-selection extension; their bound
// must parse as a number. Duplicate sibling attributes are rejected.

#ifndef INS_NAME_PARSER_H_
#define INS_NAME_PARSER_H_

#include <string_view>

#include "ins/common/status.h"
#include "ins/name/name_specifier.h"

namespace ins {

// Parses the text form; errors carry the byte offset of the problem.
Result<NameSpecifier> ParseNameSpecifier(std::string_view text);

}  // namespace ins

#endif  // INS_NAME_PARSER_H_
