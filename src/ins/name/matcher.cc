#include "ins/name/matcher.h"

namespace ins {

namespace {

// Returns true if the advertised sibling set satisfies every query av-pair at
// this level, mirroring one recursion level of LOOKUP-NAME on a
// single-advertisement tree.
bool MatchLevel(const std::vector<AvPair>& adv, const std::vector<AvPair>& query) {
  for (const AvPair& q : query) {
    const AvPair* a = FindPair(adv, q.attribute);
    if (a == nullptr) {
      // Attribute absent from the (single-advertisement) tree: LOOKUP-NAME's
      // `if Ta = null then continue` — no constraint.
      continue;
    }
    if (q.value.is_wildcard()) {
      // Wildcard admits any advertised value; children after a wildcard are
      // ignored by the single-pass algorithm.
      continue;
    }
    if (!a->value.is_literal()) {
      // Advertisements are expected to carry concrete literals. An
      // advertised wildcard matches anything (it denotes "any value").
      if (a->value.is_wildcard()) {
        continue;
      }
      return false;
    }
    if (!q.value.AcceptsValue(a->value)) {
      return false;  // range kinds compare against the cached numeric
    }
    if (a->children.empty()) {
      // Advertisement chain ends here: its omitted descendants are
      // wildcards, so the remaining query constraints are satisfied.
      continue;
    }
    if (!MatchLevel(a->children, q.children)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool Matches(const NameSpecifier& advertisement, const NameSpecifier& query) {
  return MatchLevel(advertisement.roots(), query.roots());
}

}  // namespace ins
