// Specifier-vs-specifier matching.
//
// Matches(advertisement, query) answers: would LOOKUP-NAME on a name-tree
// containing only `advertisement` return its record for `query`? Per the
// paper (§2.3.2), omitted attributes are wildcards on BOTH sides:
//
//  * a query av-pair whose attribute the advertisement lacks does not
//    constrain the match;
//  * an advertisement whose chain ends early (is a prefix of the query's
//    chain) still matches — LOOKUP-NAME unions records attached at interior
//    value-nodes on return;
//  * a wildcard query value matches any advertised value, and av-pairs below
//    a wildcard are ignored (single-pass, no backtracking);
//  * range query values match numerically against the advertised literal.
//
// This predicate is the test oracle for the name-tree and is what INRs use to
// answer client name-discovery requests (filter against all known names).

#ifndef INS_NAME_MATCHER_H_
#define INS_NAME_MATCHER_H_

#include "ins/name/name_specifier.h"

namespace ins {

bool Matches(const NameSpecifier& advertisement, const NameSpecifier& query);

}  // namespace ins

#endif  // INS_NAME_MATCHER_H_
