// Intentional names: attribute-value trees (paper §2.1).
//
// A name-specifier is a hierarchical arrangement of attribute-value pairs:
// av-pairs that depend on another are its descendants, orthogonal av-pairs are
// siblings. Values are free-form strings, the wildcard `*`, or (the paper's
// announced extension, implemented here) a numeric range constraint such as
// `load<5`. Among siblings, each attribute appears at most once.
//
// The canonical text form matches the paper's wire representation
// (Figure 3):  [city=washington [building=whitehouse]] [service=camera ...]

#ifndef INS_NAME_NAME_SPECIFIER_H_
#define INS_NAME_NAME_SPECIFIER_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ins {

// The value half of an av-pair.
class Value {
 public:
  enum class Kind : uint8_t {
    kLiteral = 0,    // exact string, e.g. "camera"
    kWildcard = 1,   // `*`: any value
    kLess = 2,       // numeric: advertisement value <  bound
    kLessEqual = 3,  // numeric: advertisement value <= bound
    kGreater = 4,    // numeric: advertisement value >  bound
    kGreaterEqual = 5,
  };

  Value() : kind_(Kind::kWildcard) {}

  static Value Literal(std::string s);
  static Value Wildcard();
  // `op` must be one of the four range kinds; the bound is kept both as the
  // original token (for serialization) and as a parsed double (for matching).
  static Value Range(Kind op, double bound);

  Kind kind() const { return kind_; }
  bool is_literal() const { return kind_ == Kind::kLiteral; }
  bool is_wildcard() const { return kind_ == Kind::kWildcard; }
  bool is_range() const { return !is_literal() && !is_wildcard(); }

  // Valid only for kLiteral.
  const std::string& literal() const { return literal_; }
  // Valid only for range kinds.
  double bound() const { return bound_; }

  // For literals: the literal parsed as a number, cached at construction so
  // range matching never re-runs strtod per candidate. Nullopt when the
  // literal is not numeric (or for non-literal kinds).
  std::optional<double> numeric() const {
    if (kind_ == Kind::kLiteral && has_numeric_) {
      return numeric_;
    }
    return std::nullopt;
  }

  // True if a concrete advertised literal satisfies this (query) value.
  // Range kinds require the advertised literal to parse as a number.
  bool Accepts(const std::string& advertised_literal) const;

  // As Accepts, against an advertised Value: literals compare exactly; range
  // kinds use the advertisement's cached numeric (no re-parse). An advertised
  // wildcard satisfies everything; an advertised range satisfies nothing.
  bool AcceptsValue(const Value& advertised) const;

  // True when an advertised value with cached numeric `n` (absent = not
  // numeric) satisfies this value — the integer-compare core of range
  // matching shared by the tree and the matcher.
  bool AcceptsNumeric(std::optional<double> n) const;

  // Token as it appears after the attribute in the text form, including the
  // operator for ranges (the `=` separator is owned by the serializer).
  std::string ToToken() const;

  friend bool operator==(const Value& a, const Value& b);

 private:
  Kind kind_;
  std::string literal_;  // literal text, or textual bound for ranges
  double bound_ = 0.0;
  double numeric_ = 0.0;      // literal parsed as a number (kLiteral only)
  bool has_numeric_ = false;  // whether numeric_ is valid
};

// Converts a stored value token back into a Value ("*" -> wildcard, "<5" ->
// range, anything else -> literal). Shared by the name-tree, the compiled
// name decompiler, and the wire codecs.
Value ValueFromToken(const std::string& token);

// Attempts to parse a value literal as a number (used by range matching and
// by intentional-anycast metric comparison). Returns nullopt on failure.
std::optional<double> ParseNumeric(std::string_view s);

// One attribute-value pair plus its dependent (child) av-pairs.
struct AvPair {
  std::string attribute;
  Value value;
  // Sorted by attribute, unique attributes. Order is maintained by the
  // owning NameSpecifier's mutation helpers.
  std::vector<AvPair> children;

  AvPair() = default;
  AvPair(std::string attr, Value val) : attribute(std::move(attr)), value(std::move(val)) {}

  friend bool operator==(const AvPair& a, const AvPair& b);
};

// A complete intentional name: a forest of orthogonal root av-pairs.
class NameSpecifier {
 public:
  NameSpecifier() = default;

  // Merges a root-to-leaf chain of literal av-pairs into the tree, sharing
  // existing (attribute, value) prefixes. This is the main construction API:
  //
  //   NameSpecifier n;
  //   n.AddPath({{"service", "camera"}, {"entity", "transmitter"}});
  //   n.AddPath({{"service", "camera"}, {"id", "a"}});
  //   n.AddPath({{"room", "510"}});
  void AddPath(std::initializer_list<std::pair<std::string_view, std::string_view>> path);
  void AddPath(const std::vector<std::pair<std::string, std::string>>& path);

  // As AddPath but the final pair carries an arbitrary Value (wildcard/range).
  void AddPathValue(const std::vector<std::pair<std::string, std::string>>& prefix,
                    const std::string& attribute, Value value);

  // Direct access to the root forest. Mutation through this reference must
  // keep siblings sorted by attribute; prefer AddPath.
  const std::vector<AvPair>& roots() const { return roots_; }
  std::vector<AvPair>& mutable_roots() { return roots_; }

  bool empty() const { return roots_.empty(); }

  // Counts av-pairs in the whole tree.
  size_t PairCount() const;

  // Maximum depth in av-pairs (a single root pair has depth 1).
  size_t Depth() const;

  // Looks up the literal value at the end of a chain of attributes, following
  // the first (and only, by the uniqueness invariant) matching attribute at
  // each level. Returns nullopt if absent or not a literal. Convenient for
  // applications: n.GetValue({"service", "entity"}) -> "transmitter".
  std::optional<std::string> GetValue(const std::vector<std::string>& attribute_path) const;

  // Replaces (or adds) the value at an attribute path with a literal,
  // creating intermediate pairs with the given path values if needed.
  void SetValue(const std::vector<std::string>& attribute_path, const std::string& leaf_value);

  // Canonical wire text: minimal whitespace, siblings in sorted attribute
  // order. Two structurally equal specifiers serialize identically.
  std::string ToString() const;

  // Indented multi-line rendering for logs and debugging.
  std::string ToPrettyString() const;

  // Size in bytes of the canonical text form (what goes in packet headers).
  size_t WireSize() const { return ToString().size(); }

  // Structural equality and a matching hash (over the canonical form).
  friend bool operator==(const NameSpecifier& a, const NameSpecifier& b);
  size_t Hash() const;

 private:
  std::vector<AvPair> roots_;
};

// Finds the child with the given attribute in a sorted sibling vector, or
// nullptr. Shared by the matcher and the name-tree.
const AvPair* FindPair(const std::vector<AvPair>& siblings, std::string_view attribute);
AvPair* FindPair(std::vector<AvPair>& siblings, std::string_view attribute);

// Inserts a pair keeping the sibling vector sorted by attribute. If the
// attribute already exists, returns the existing pair (value untouched).
AvPair* InsertPair(std::vector<AvPair>& siblings, std::string attribute, Value value);

}  // namespace ins

#endif  // INS_NAME_NAME_SPECIFIER_H_
