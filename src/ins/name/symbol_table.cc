#include "ins/name/symbol_table.h"

#include <algorithm>
#include <cassert>

namespace ins {

namespace {
constexpr size_t kInitialCapacity = 256;
constexpr uint64_t kEmptySlot = 0;

uint64_t PackSlot(uint32_t hash, SymbolId id) {
  return (static_cast<uint64_t>(hash) << 32) | (static_cast<uint64_t>(id) + 1);
}
}  // namespace

SymbolTable::Table::Table(size_t cap)
    : capacity(cap), slots(std::make_unique<std::atomic<uint64_t>[]>(cap)) {
  for (size_t i = 0; i < cap; ++i) {
    slots[i].store(kEmptySlot, std::memory_order_relaxed);
  }
}

SymbolTable::SymbolTable() {
  auto t = std::make_unique<Table>(kInitialCapacity);
  table_.store(t.get(), std::memory_order_release);
  all_tables_.push_back(std::move(t));
}

SymbolTable::~SymbolTable() {
  const size_t n = count_.load(std::memory_order_acquire);
  for (size_t c = 0; c * kChunkSize < n; ++c) {
    delete[] chunks_[c].load(std::memory_order_acquire);
  }
}

uint32_t SymbolTable::HashString(std::string_view s) {
  // FNV-1a, folded to 32 bits; zero is remapped so a packed slot of an
  // interned symbol can never equal kEmptySlot.
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  uint32_t folded = static_cast<uint32_t>(h ^ (h >> 32));
  return folded == 0 ? 1 : folded;
}

SymbolId SymbolTable::FindIn(const Table& t, std::string_view s, uint32_t hash) const {
  const size_t mask = t.capacity - 1;
  for (size_t i = hash & mask;; i = (i + 1) & mask) {
    const uint64_t v = t.slots[i].load(std::memory_order_acquire);
    if (v == kEmptySlot) {
      return kInvalidSymbol;
    }
    if (static_cast<uint32_t>(v >> 32) == hash) {
      const SymbolId id = static_cast<SymbolId>(v & 0xFFFFFFFFull) - 1;
      if (NameOf(id) == s) {
        return id;
      }
    }
  }
}

SymbolId SymbolTable::Find(std::string_view s) const {
  const Table* t = table_.load(std::memory_order_acquire);
  return FindIn(*t, s, HashString(s));
}

std::string_view SymbolTable::NameOf(SymbolId id) const {
  const std::string* chunk = chunks_[id >> kChunkBits].load(std::memory_order_acquire);
  assert(chunk != nullptr && "NameOf on an unpublished SymbolId");
  return chunk[id & (kChunkSize - 1)];
}

void SymbolTable::Grow() {
  const Table* old_table = table_.load(std::memory_order_relaxed);
  auto grown = std::make_unique<Table>(old_table->capacity * 2);
  const size_t mask = grown->capacity - 1;
  for (size_t i = 0; i < old_table->capacity; ++i) {
    const uint64_t v = old_table->slots[i].load(std::memory_order_relaxed);
    if (v == kEmptySlot) {
      continue;
    }
    const uint32_t hash = static_cast<uint32_t>(v >> 32);
    size_t j = hash & mask;
    while (grown->slots[j].load(std::memory_order_relaxed) != kEmptySlot) {
      j = (j + 1) & mask;
    }
    grown->slots[j].store(v, std::memory_order_relaxed);
  }
  // Publish fully built; the old table is retired but kept alive for readers
  // still probing it (they simply see a slightly stale snapshot).
  table_.store(grown.get(), std::memory_order_release);
  all_tables_.push_back(std::move(grown));
}

SymbolId SymbolTable::Intern(std::string_view s) {
  const uint32_t hash = HashString(s);
  // Fast path: already interned (lock-free probe).
  SymbolId id = FindIn(*table_.load(std::memory_order_acquire), s, hash);
  if (id != kInvalidSymbol) {
    return id;
  }

  std::lock_guard<std::mutex> lock(mu_);
  // Re-check under the lock: another writer may have interned it.
  Table* t = table_.load(std::memory_order_relaxed);
  id = FindIn(*t, s, hash);
  if (id != kInvalidSymbol) {
    return id;
  }

  const size_t n = count_.load(std::memory_order_relaxed);
  assert(n < kMaxChunks * kChunkSize && "symbol table exhausted");
  if (n + 1 > t->capacity - t->capacity / 4) {  // keep load factor <= 3/4
    Grow();
    t = table_.load(std::memory_order_relaxed);
  }

  // Write the string bytes first, then publish the slot (release) so any
  // reader that sees the slot also sees the completed string.
  const size_t chunk_idx = n >> kChunkBits;
  std::string* chunk = chunks_[chunk_idx].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new std::string[kChunkSize];
    chunks_[chunk_idx].store(chunk, std::memory_order_release);
  }
  chunk[n & (kChunkSize - 1)] = std::string(s);

  id = static_cast<SymbolId>(n);
  const size_t mask = t->capacity - 1;
  size_t i = hash & mask;
  while (t->slots[i].load(std::memory_order_relaxed) != kEmptySlot) {
    i = (i + 1) & mask;
  }
  t->slots[i].store(PackSlot(hash, id), std::memory_order_release);
  count_.store(n + 1, std::memory_order_release);
  return id;
}

size_t SymbolTable::MemoryBytes() const {
  size_t bytes = sizeof(SymbolTable);
  const size_t n = count_.load(std::memory_order_acquire);
  for (size_t c = 0; c * kChunkSize < n; ++c) {
    const std::string* chunk = chunks_[c].load(std::memory_order_acquire);
    if (chunk == nullptr) {
      continue;
    }
    bytes += kChunkSize * sizeof(std::string);
    const size_t in_chunk = std::min(kChunkSize, n - c * kChunkSize);
    for (size_t i = 0; i < in_chunk; ++i) {
      if (chunk[i].capacity() > sizeof(std::string)) {  // beyond SSO
        bytes += chunk[i].capacity();
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& t : all_tables_) {
    bytes += sizeof(Table) + t->capacity * sizeof(std::atomic<uint64_t>);
  }
  return bytes;
}

}  // namespace ins
