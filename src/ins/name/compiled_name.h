// The compiled form of a NameSpecifier: av-pairs carrying interned SymbolIds
// and pre-parsed numerics, flattened into one contiguous node array.
//
// A specifier is compiled exactly once — at parse/decode time on the update
// path, or per store operation on the query path — and then reused across
// every shard and both left-right replica sides it touches. Grafting and
// LOOKUP-NAME thereafter run on integer compares: no std::string hashing, no
// per-candidate strtod.
//
// Two compile modes:
//   * ForUpdate interns every attribute and value token (writer path; may
//     grow the symbol table). It also parses each literal token as a number
//     once, so range matching against the grafted value-node is a cached
//     double compare.
//   * ForQuery only probes (lock-free, never mutates the table). A token the
//     table has never seen compiles to kInvalidSymbol, which the tree's flat
//     maps treat as "matches no child" — precisely the semantics of a value
//     advertised nowhere; an unknown *attribute* likewise probes absent at
//     every node, which is LOOKUP-NAME's `if Ta = null then continue`.
//
// Layout: nodes in level order; each node addresses its children as a dense
// [child_begin, child_begin + child_count) range, roots at [0, root_count).

#ifndef INS_NAME_COMPILED_NAME_H_
#define INS_NAME_COMPILED_NAME_H_

#include <cstdint>
#include <vector>

#include "ins/name/name_specifier.h"
#include "ins/name/symbol_table.h"

namespace ins {

struct CompiledAvNode {
  SymbolId attribute = kInvalidSymbol;
  SymbolId token = kInvalidSymbol;  // interned Value::ToToken() text
  Value::Kind kind = Value::Kind::kWildcard;
  // Range kinds: the bound. Literal kinds: the token parsed as a number
  // (valid only when has_number), cached on the value-node at graft time.
  double number = 0.0;
  bool has_number = false;
  uint32_t child_begin = 0;
  uint32_t child_count = 0;
};

class CompiledName {
 public:
  CompiledName() = default;

  // Interns every symbol (update/graft path). `table` must outlive uses.
  static CompiledName ForUpdate(const NameSpecifier& name, SymbolTable* table);

  // Read-only probe compile (query path); never mutates `table`.
  static CompiledName ForQuery(const NameSpecifier& name, const SymbolTable& table);

  // ForQuery into an existing instance, reusing its node capacity. The
  // string-query entry points compile through a thread-local buffer so a
  // lookup costs no allocation beyond its result.
  static void ForQueryInto(const NameSpecifier& name, const SymbolTable& table,
                           CompiledName* out);

  const std::vector<CompiledAvNode>& nodes() const { return nodes_; }
  uint32_t root_count() const { return root_count_; }
  bool empty() const { return nodes_.empty(); }

  // Reconstructs the NameSpecifier (tests / round-trip checks). Nodes with
  // unresolved symbols (possible only in ForQuery output) are not
  // representable and must not be present.
  NameSpecifier Decompile(const SymbolTable& table) const;

 private:
  static void CompileInto(const NameSpecifier& name, SymbolTable* intern_into,
                          const SymbolTable& table, CompiledName* out);

  std::vector<CompiledAvNode> nodes_;
  uint32_t root_count_ = 0;
};

}  // namespace ins

#endif  // INS_NAME_COMPILED_NAME_H_
