#include "ins/name/name_specifier.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cstdlib>
#include <functional>
#include <sstream>

namespace ins {

Value Value::Literal(std::string s) {
  Value v;
  v.kind_ = Kind::kLiteral;
  v.literal_ = std::move(s);
  // Parse once here — at construction, i.e. parse/decode time — so range
  // matching against this literal is a cached double compare forever after.
  std::optional<double> n = ParseNumeric(v.literal_);
  v.has_numeric_ = n.has_value();
  v.numeric_ = n.value_or(0.0);
  return v;
}

Value Value::Wildcard() {
  Value v;
  v.kind_ = Kind::kWildcard;
  return v;
}

Value Value::Range(Kind op, double bound) {
  assert(op == Kind::kLess || op == Kind::kLessEqual || op == Kind::kGreater ||
         op == Kind::kGreaterEqual);
  Value v;
  v.kind_ = op;
  v.bound_ = bound;
  std::ostringstream os;
  os << bound;
  v.literal_ = os.str();
  return v;
}

std::optional<double> ParseNumeric(std::string_view s) {
  if (s.empty()) {
    return std::nullopt;
  }
  // std::from_chars<double> is available in libstdc++ 11+.
  double out = 0.0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || ptr != end) {
    return std::nullopt;
  }
  return out;
}

bool Value::Accepts(const std::string& advertised_literal) const {
  switch (kind_) {
    case Kind::kWildcard:
      return true;
    case Kind::kLiteral:
      return literal_ == advertised_literal;
    case Kind::kLess:
    case Kind::kLessEqual:
    case Kind::kGreater:
    case Kind::kGreaterEqual:
      return AcceptsNumeric(ParseNumeric(advertised_literal));
  }
  return false;
}

bool Value::AcceptsNumeric(std::optional<double> n) const {
  if (kind_ == Kind::kWildcard) {
    return true;
  }
  if (!n.has_value()) {
    return false;
  }
  switch (kind_) {
    case Kind::kLess:
      return *n < bound_;
    case Kind::kLessEqual:
      return *n <= bound_;
    case Kind::kGreater:
      return *n > bound_;
    case Kind::kGreaterEqual:
      return *n >= bound_;
    default:
      return false;
  }
}

bool Value::AcceptsValue(const Value& advertised) const {
  if (kind_ == Kind::kWildcard || advertised.kind_ == Kind::kWildcard) {
    return true;  // either side wildcard: no constraint
  }
  if (advertised.kind_ != Kind::kLiteral) {
    return false;  // an advertised range constrains nothing concrete
  }
  if (kind_ == Kind::kLiteral) {
    return literal_ == advertised.literal_;
  }
  return AcceptsNumeric(advertised.numeric());
}

std::string Value::ToToken() const {
  switch (kind_) {
    case Kind::kLiteral:
      return literal_;
    case Kind::kWildcard:
      return "*";
    case Kind::kLess:
      return "<" + literal_;
    case Kind::kLessEqual:
      return "<=" + literal_;
    case Kind::kGreater:
      return ">" + literal_;
    case Kind::kGreaterEqual:
      return ">=" + literal_;
  }
  return "?";
}

Value ValueFromToken(const std::string& token) {
  if (token == "*") {
    return Value::Wildcard();
  }
  if (!token.empty() && (token[0] == '<' || token[0] == '>')) {
    size_t skip = 1;
    bool or_equal = token.size() > 1 && token[1] == '=';
    if (or_equal) {
      skip = 2;
    }
    std::optional<double> bound = ParseNumeric(std::string_view(token).substr(skip));
    if (bound.has_value()) {
      Value::Kind kind;
      if (token[0] == '<') {
        kind = or_equal ? Value::Kind::kLessEqual : Value::Kind::kLess;
      } else {
        kind = or_equal ? Value::Kind::kGreaterEqual : Value::Kind::kGreater;
      }
      return Value::Range(kind, *bound);
    }
  }
  return Value::Literal(token);
}

bool operator==(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) {
    return false;
  }
  if (a.kind_ == Value::Kind::kLiteral) {
    return a.literal_ == b.literal_;
  }
  if (a.is_range()) {
    return a.bound_ == b.bound_;
  }
  return true;  // both wildcards
}

bool operator==(const AvPair& a, const AvPair& b) {
  return a.attribute == b.attribute && a.value == b.value && a.children == b.children;
}

const AvPair* FindPair(const std::vector<AvPair>& siblings, std::string_view attribute) {
  auto it = std::lower_bound(
      siblings.begin(), siblings.end(), attribute,
      [](const AvPair& p, std::string_view attr) { return p.attribute < attr; });
  if (it != siblings.end() && it->attribute == attribute) {
    return &*it;
  }
  return nullptr;
}

AvPair* FindPair(std::vector<AvPair>& siblings, std::string_view attribute) {
  return const_cast<AvPair*>(
      FindPair(static_cast<const std::vector<AvPair>&>(siblings), attribute));
}

AvPair* InsertPair(std::vector<AvPair>& siblings, std::string attribute, Value value) {
  auto it = std::lower_bound(
      siblings.begin(), siblings.end(), attribute,
      [](const AvPair& p, const std::string& attr) { return p.attribute < attr; });
  if (it != siblings.end() && it->attribute == attribute) {
    return &*it;
  }
  it = siblings.insert(it, AvPair(std::move(attribute), std::move(value)));
  return &*it;
}

void NameSpecifier::AddPath(
    std::initializer_list<std::pair<std::string_view, std::string_view>> path) {
  std::vector<std::pair<std::string, std::string>> copy;
  copy.reserve(path.size());
  for (const auto& [a, v] : path) {
    copy.emplace_back(std::string(a), std::string(v));
  }
  AddPath(copy);
}

void NameSpecifier::AddPath(const std::vector<std::pair<std::string, std::string>>& path) {
  std::vector<AvPair>* level = &roots_;
  for (const auto& [attr, val] : path) {
    AvPair* p = InsertPair(*level, attr, Value::Literal(val));
    // If the attribute existed with a different value, follow the requested
    // value by replacing: paths are literal chains, and an application that
    // AddPath()s two different values for one attribute wants the new one as
    // a sibling only if values could repeat — which the uniqueness invariant
    // forbids. Keep the existing pair if values agree; otherwise overwrite.
    if (!(p->value == Value::Literal(val))) {
      p->value = Value::Literal(val);
    }
    level = &p->children;
  }
}

void NameSpecifier::AddPathValue(const std::vector<std::pair<std::string, std::string>>& prefix,
                                 const std::string& attribute, Value value) {
  std::vector<AvPair>* level = &roots_;
  for (const auto& [attr, val] : prefix) {
    AvPair* p = InsertPair(*level, attr, Value::Literal(val));
    level = &p->children;
  }
  AvPair* leaf = InsertPair(*level, attribute, value);
  leaf->value = std::move(value);
}

size_t NameSpecifier::PairCount() const {
  size_t n = 0;
  std::function<void(const std::vector<AvPair>&)> walk = [&](const std::vector<AvPair>& v) {
    n += v.size();
    for (const AvPair& p : v) {
      walk(p.children);
    }
  };
  walk(roots_);
  return n;
}

size_t NameSpecifier::Depth() const {
  std::function<size_t(const std::vector<AvPair>&)> walk =
      [&](const std::vector<AvPair>& v) -> size_t {
    size_t best = 0;
    for (const AvPair& p : v) {
      best = std::max(best, 1 + walk(p.children));
    }
    return best;
  };
  return walk(roots_);
}

std::optional<std::string> NameSpecifier::GetValue(
    const std::vector<std::string>& attribute_path) const {
  const std::vector<AvPair>* level = &roots_;
  const AvPair* p = nullptr;
  for (const std::string& attr : attribute_path) {
    p = FindPair(*level, attr);
    if (p == nullptr) {
      return std::nullopt;
    }
    level = &p->children;
  }
  if (p == nullptr || !p->value.is_literal()) {
    return std::nullopt;
  }
  return p->value.literal();
}

void NameSpecifier::SetValue(const std::vector<std::string>& attribute_path,
                             const std::string& leaf_value) {
  assert(!attribute_path.empty());
  std::vector<AvPair>* level = &roots_;
  AvPair* p = nullptr;
  for (const std::string& attr : attribute_path) {
    p = InsertPair(*level, attr, Value::Wildcard());
    level = &p->children;
  }
  p->value = Value::Literal(leaf_value);
}

namespace {

void SerializePairs(const std::vector<AvPair>& pairs, std::string* out) {
  for (const AvPair& p : pairs) {
    out->push_back('[');
    out->append(p.attribute);
    // `[attr=*]` is the canonical form; the parser also accepts the bare
    // `[attr]` shorthand from the paper's Floorplan example.
    if (p.value.is_range()) {
      out->append(p.value.ToToken());  // operator is part of the token
    } else {
      out->push_back('=');
      out->append(p.value.ToToken());
    }
    if (!p.children.empty()) {
      SerializePairs(p.children, out);
    }
    out->push_back(']');
  }
}

void PrettyPairs(const std::vector<AvPair>& pairs, int indent, std::string* out) {
  for (const AvPair& p : pairs) {
    out->append(static_cast<size_t>(indent) * 2, ' ');
    out->push_back('[');
    out->append(p.attribute);
    if (p.value.is_range()) {
      out->append(p.value.ToToken());
    } else {
      out->push_back('=');
      out->append(p.value.ToToken());
    }
    if (p.children.empty()) {
      out->append("]\n");
    } else {
      out->push_back('\n');
      PrettyPairs(p.children, indent + 1, out);
      out->append(static_cast<size_t>(indent) * 2, ' ');
      out->append("]\n");
    }
  }
}

}  // namespace

std::string NameSpecifier::ToString() const {
  std::string out;
  SerializePairs(roots_, &out);
  return out;
}

std::string NameSpecifier::ToPrettyString() const {
  std::string out;
  PrettyPairs(roots_, 0, &out);
  return out;
}

bool operator==(const NameSpecifier& a, const NameSpecifier& b) {
  return a.roots_ == b.roots_;
}

size_t NameSpecifier::Hash() const {
  return std::hash<std::string>()(ToString());
}

}  // namespace ins
