#include "ins/name/parser.h"

#include <cctype>
#include <string>

namespace ins {

namespace {

bool IsTokenChar(char c) {
  if (std::isspace(static_cast<unsigned char>(c)) != 0) {
    return false;
  }
  switch (c) {
    case '[':
    case ']':
    case '=':
    case '<':
    case '>':
    case '*':
      return false;
    default:
      return true;
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<NameSpecifier> Parse() {
    NameSpecifier spec;
    SkipWhitespace();
    while (!AtEnd()) {
      INS_RETURN_IF_ERROR(ParsePair(&spec.mutable_roots()));
      SkipWhitespace();
    }
    return spec;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek())) != 0) {
      ++pos_;
    }
  }

  Status ErrorHere(const std::string& what) const {
    return InvalidArgumentError(what + " at offset " + std::to_string(pos_));
  }

  Result<std::string> ParseToken() {
    SkipWhitespace();
    size_t start = pos_;
    while (!AtEnd() && IsTokenChar(Peek())) {
      ++pos_;
    }
    if (pos_ == start) {
      return ErrorHere("expected token");
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  // Parses one bracketed av-pair into `siblings`.
  Status ParsePair(std::vector<AvPair>* siblings) {
    SkipWhitespace();
    if (AtEnd() || Peek() != '[') {
      return ErrorHere("expected '['");
    }
    ++pos_;  // consume '['

    auto attr = ParseToken();
    if (!attr.ok()) {
      return attr.status();
    }

    SkipWhitespace();
    Value value = Value::Wildcard();  // bare [attr] means any value
    if (!AtEnd() && (Peek() == '=' || Peek() == '<' || Peek() == '>')) {
      INS_ASSIGN_OR_RETURN(value, ParseValue());
    }

    if (FindPair(*siblings, *attr) != nullptr) {
      return ErrorHere("duplicate sibling attribute '" + *attr + "'");
    }
    AvPair* pair = InsertPair(*siblings, std::move(*attr), std::move(value));

    // Child av-pairs until the closing bracket.
    SkipWhitespace();
    while (!AtEnd() && Peek() == '[') {
      INS_RETURN_IF_ERROR(ParsePair(&pair->children));
      SkipWhitespace();
    }
    if (AtEnd() || Peek() != ']') {
      return ErrorHere("expected ']'");
    }
    ++pos_;  // consume ']'
    return Status::Ok();
  }

  Result<Value> ParseValue() {
    char op = Peek();
    ++pos_;
    if (op == '=') {
      SkipWhitespace();
      if (!AtEnd() && Peek() == '*') {
        ++pos_;
        return Value::Wildcard();
      }
      auto tok = ParseToken();
      if (!tok.ok()) {
        return tok.status();
      }
      return Value::Literal(std::move(*tok));
    }
    // Range operator: '<', '<=', '>', '>='.
    bool or_equal = false;
    if (!AtEnd() && Peek() == '=') {
      or_equal = true;
      ++pos_;
    }
    auto tok = ParseToken();
    if (!tok.ok()) {
      return tok.status();
    }
    std::optional<double> bound = ParseNumeric(*tok);
    if (!bound.has_value()) {
      return ErrorHere("range bound '" + *tok + "' is not numeric");
    }
    Value::Kind kind;
    if (op == '<') {
      kind = or_equal ? Value::Kind::kLessEqual : Value::Kind::kLess;
    } else {
      kind = or_equal ? Value::Kind::kGreaterEqual : Value::Kind::kGreater;
    }
    return Value::Range(kind, *bound);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<NameSpecifier> ParseNameSpecifier(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace ins
