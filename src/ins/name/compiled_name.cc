#include "ins/name/compiled_name.h"

#include <cassert>
#include <utility>

namespace ins {

namespace {

size_t CountPairs(const std::vector<AvPair>& pairs) {
  size_t n = pairs.size();
  for (const AvPair& p : pairs) {
    n += CountPairs(p.children);
  }
  return n;
}

}  // namespace

void CompiledName::CompileInto(const NameSpecifier& name, SymbolTable* intern_into,
                               const SymbolTable& table, CompiledName* out_ptr) {
  CompiledName& out = *out_ptr;
  out.nodes_.clear();
  // Exact-size the node array up front: compilation runs once per query on
  // the lookup path, so its own allocations are hot.
  out.nodes_.reserve(CountPairs(name.roots()));
  // Worklist of sibling groups; each entry remembers which emitted node must
  // be patched with the group's placement.
  struct Group {
    const std::vector<AvPair>* pairs;
    uint32_t parent;  // index into out.nodes_, or UINT32_MAX for roots
  };
  std::vector<Group> queue;
  queue.reserve(8);
  queue.push_back(Group{&name.roots(), UINT32_MAX});
  out.root_count_ = static_cast<uint32_t>(name.roots().size());

  for (size_t qi = 0; qi < queue.size(); ++qi) {
    const Group g = queue[qi];
    const uint32_t begin = static_cast<uint32_t>(out.nodes_.size());
    if (g.parent != UINT32_MAX) {
      out.nodes_[g.parent].child_begin = begin;
      out.nodes_[g.parent].child_count = static_cast<uint32_t>(g.pairs->size());
    }
    for (const AvPair& p : *g.pairs) {
      CompiledAvNode n;
      // Literal tokens are the value string itself: intern the view without
      // the ToToken() copy. Wildcard/range tokens compose a string, but they
      // are rare in both names and queries.
      if (p.value.is_literal()) {
        n.attribute = intern_into != nullptr ? intern_into->Intern(p.attribute)
                                             : table.Find(p.attribute);
        n.token = intern_into != nullptr ? intern_into->Intern(p.value.literal())
                                         : table.Find(p.value.literal());
      } else {
        const std::string token = p.value.ToToken();
        if (intern_into != nullptr) {
          n.attribute = intern_into->Intern(p.attribute);
          n.token = intern_into->Intern(token);
        } else {
          n.attribute = table.Find(p.attribute);
          n.token = table.Find(token);
        }
      }
      n.kind = p.value.kind();
      if (p.value.is_range()) {
        n.number = p.value.bound();
        n.has_number = true;
      } else if (p.value.is_literal()) {
        std::optional<double> num = p.value.numeric();
        n.has_number = num.has_value();
        n.number = num.value_or(0.0);
      }
      out.nodes_.push_back(n);
    }
    for (size_t i = 0; i < g.pairs->size(); ++i) {
      const AvPair& p = (*g.pairs)[i];
      if (!p.children.empty()) {
        queue.push_back(Group{&p.children, begin + static_cast<uint32_t>(i)});
      }
    }
  }
}

CompiledName CompiledName::ForUpdate(const NameSpecifier& name, SymbolTable* table) {
  assert(table != nullptr);
  CompiledName out;
  CompileInto(name, table, *table, &out);
  return out;
}

CompiledName CompiledName::ForQuery(const NameSpecifier& name, const SymbolTable& table) {
  CompiledName out;
  CompileInto(name, nullptr, table, &out);
  return out;
}

void CompiledName::ForQueryInto(const NameSpecifier& name, const SymbolTable& table,
                                CompiledName* out) {
  CompileInto(name, nullptr, table, out);
}

NameSpecifier CompiledName::Decompile(const SymbolTable& table) const {
  NameSpecifier out;
  // Rebuild recursively; InsertPair keeps sibling order canonical.
  struct Rebuilder {
    const std::vector<CompiledAvNode>& nodes;
    const SymbolTable& table;
    void Build(uint32_t begin, uint32_t count, std::vector<AvPair>* siblings) const {
      for (uint32_t i = begin; i < begin + count; ++i) {
        const CompiledAvNode& n = nodes[i];
        assert(n.attribute != kInvalidSymbol && n.token != kInvalidSymbol);
        AvPair* pair =
            InsertPair(*siblings, std::string(table.NameOf(n.attribute)),
                       ValueFromToken(std::string(table.NameOf(n.token))));
        Build(n.child_begin, n.child_count, &pair->children);
      }
    }
  };
  Rebuilder{nodes_, table}.Build(0, root_count_, &out.mutable_roots());
  return out;
}

}  // namespace ins
