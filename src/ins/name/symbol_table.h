// Interned name components: the resolver's append-only symbol table.
//
// Every attribute and value token that enters a resolver — through an
// advertisement graft, a name update, or a query compile — is mapped to a
// dense u32 SymbolId. The hot lookup path then works entirely in integer
// compares and integer-keyed flat maps (nametree/symbol_map.h) instead of
// std::string hashing, the same trick the BSD vfs name cache and Linux's
// dcache use to keep path resolution cache-dense.
//
// Concurrency contract (what lets this compose with ShardedNameTree's
// left-right replicas):
//
//   * Intern() may be called from any writer thread; writers serialize on an
//     internal mutex. Ids are assigned densely in intern order and NEVER
//     change or disappear — the table is append-only.
//   * Find() and NameOf() are lock-free and wait-free: readers load the
//     current index table and string chunks with acquire semantics and never
//     block on writers. A Find() racing an Intern() of the same string may
//     miss it (snapshot semantics) — for query compilation that is exactly
//     the "this token is advertised nowhere yet" answer the tree snapshot
//     implies.
//   * NameOf(id) is safe for any id obtained from Intern(), from Find(), or
//     from a published tree snapshot: the string bytes are fully written
//     before the id is published (release/acquire pairing on the index slot
//     and the size counter).

#ifndef INS_NAME_SYMBOL_TABLE_H_
#define INS_NAME_SYMBOL_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ins {

using SymbolId = uint32_t;
inline constexpr SymbolId kInvalidSymbol = 0xFFFFFFFFu;

class SymbolTable {
 public:
  SymbolTable();
  ~SymbolTable();

  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  // Returns the id for `s`, interning it if new. Writer path (serialized).
  SymbolId Intern(std::string_view s);

  // Lock-free read-only probe: the id of `s`, or kInvalidSymbol if `s` has
  // never been interned (in the probed snapshot).
  SymbolId Find(std::string_view s) const;

  // Lock-free reverse mapping. `id` must be a published id (< size() at some
  // point observed by this thread).
  std::string_view NameOf(SymbolId id) const;

  // Number of interned symbols (acquire; monotone).
  size_t size() const { return count_.load(std::memory_order_acquire); }

  // Resident bytes: string chunks, index tables (retired ones included —
  // they stay alive for lock-free readers), and fixed overhead. Feeds the
  // Figure 13 memory accounting.
  size_t MemoryBytes() const;

  // The hash used by the index and by SymbolMap callers that pre-hash.
  static uint32_t HashString(std::string_view s);

 private:
  // Strings live in fixed-size chunks so ids index them without relocation:
  // chunk = id >> kChunkBits, slot = id & (kChunkSize - 1). Chunk pointers
  // are published with release stores; readers acquire.
  static constexpr size_t kChunkBits = 10;
  static constexpr size_t kChunkSize = 1u << kChunkBits;  // 1024 strings
  static constexpr size_t kMaxChunks = 1u << 12;          // 4M symbols total

  // Open-addressing index: each slot packs (hash32 << 32) | (id + 1); 0 is
  // empty. Slots only transition empty -> occupied; growth swaps in a new
  // table and retires the old one (readers may keep probing it).
  struct Table {
    explicit Table(size_t cap);
    const size_t capacity;  // power of two
    std::unique_ptr<std::atomic<uint64_t>[]> slots;
  };

  SymbolId FindIn(const Table& t, std::string_view s, uint32_t hash) const;
  void Grow();  // caller holds mu_

  std::atomic<std::string*> chunks_[kMaxChunks] = {};
  std::atomic<size_t> count_{0};
  std::atomic<Table*> table_;

  mutable std::mutex mu_;  // serializes Intern and growth
  std::vector<std::unique_ptr<Table>> all_tables_;  // current + retired
};

}  // namespace ins

#endif  // INS_NAME_SYMBOL_TABLE_H_
