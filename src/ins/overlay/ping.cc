#include "ins/overlay/ping.h"

namespace ins {

namespace {
// EWMA weight of a new sample, like TCP's SRTT smoothing.
constexpr double kAlpha = 0.25;
// Metric assigned to peers with no RTT measurement yet.
constexpr double kUnknownLinkMs = 1000.0;
}  // namespace

PingAgent::PingAgent(Executor* executor, SendFn send)
    : executor_(executor), send_(std::move(send)) {}

PingAgent::~PingAgent() {
  // Pending timeout tasks capture `this`; cancel them so they cannot fire
  // after destruction (e.g. when a resolver is torn down mid-probe).
  for (const auto& [nonce, pending] : pending_) {
    executor_->Cancel(pending.timeout_task);
  }
}

void PingAgent::SendPing(const NodeAddress& target, Duration timeout, PingCallback cb) {
  uint64_t nonce = next_nonce_++;
  Ping ping;
  ping.nonce = nonce;
  ping.send_time_us = static_cast<uint64_t>(executor_->Now().count());

  TaskId timeout_task = executor_->ScheduleAfter(timeout, [this, nonce] {
    auto it = pending_.find(nonce);
    if (it == pending_.end()) {
      return;
    }
    PingCallback cb2 = std::move(it->second.callback);
    pending_.erase(it);
    cb2(std::nullopt);
  });

  pending_.emplace(nonce, Pending{target, executor_->Now(), timeout_task, std::move(cb)});
  send_(target, Envelope{MessageBody(ping)});
}

void PingAgent::HandlePong(const NodeAddress& source, const Pong& pong) {
  auto it = pending_.find(pong.nonce);
  if (it == pending_.end()) {
    return;  // late or duplicate pong
  }
  Duration rtt = executor_->Now() - it->second.sent_at;
  executor_->Cancel(it->second.timeout_task);
  PingCallback cb = std::move(it->second.callback);
  pending_.erase(it);

  auto sit = smoothed_.find(source);
  if (sit == smoothed_.end()) {
    smoothed_[source] = rtt;
  } else {
    auto blended = static_cast<int64_t>(kAlpha * static_cast<double>(rtt.count()) +
                                        (1 - kAlpha) * static_cast<double>(sit->second.count()));
    sit->second = Duration(blended);
  }
  cb(rtt);
}

std::optional<Duration> PingAgent::SmoothedRtt(const NodeAddress& peer) const {
  auto it = smoothed_.find(peer);
  if (it == smoothed_.end()) {
    return std::nullopt;
  }
  return it->second;
}

double PingAgent::LinkMetricMs(const NodeAddress& peer) const {
  auto rtt = SmoothedRtt(peer);
  if (!rtt.has_value()) {
    return kUnknownLinkMs;
  }
  return ToMillis(*rtt);
}

}  // namespace ins
