// The Domain Space Resolver (paper §2.4): a well-known entity that maintains
// the list of active and candidate INRs for the administrative domain, in the
// linear order they became active — the order that makes the self-configured
// overlay provably a spanning tree. It also maps virtual spaces to the INRs
// that route them (§2.5), which resolvers query (and cache) when they receive
// traffic for a space they do not route.
//
// Registrations are soft state: INRs re-register periodically and expire
// silently when they crash, so a failed resolver drops off the active list
// without explicit de-registration.

#ifndef INS_OVERLAY_DSR_H_
#define INS_OVERLAY_DSR_H_

#include <map>
#include <string>
#include <vector>

#include "ins/common/executor.h"
#include "ins/common/metrics.h"
#include "ins/common/transport.h"
#include "ins/wire/messages.h"

namespace ins {

struct DsrConfig {
  Duration expiry_sweep_interval = Seconds(5);
  // How long a DsrDeadInrReport keeps a member out of vspace-resolution
  // answers. Suspicion is weaker than expiry: the registration stays, and a
  // refresh from the suspect (proof of life) clears the mark immediately.
  Duration dead_suspect_ttl = Seconds(30);
};

class Dsr {
 public:
  // Binds to `transport` and serves requests until destroyed.
  Dsr(Executor* executor, Transport* transport, DsrConfig config = {});
  ~Dsr();

  Dsr(const Dsr&) = delete;
  Dsr& operator=(const Dsr&) = delete;

  // Pre-populates the candidate list (nodes where INRs may be spawned);
  // candidates may also register themselves with active=false.
  void AddCandidate(const NodeAddress& node);

  // Introspection.
  std::vector<NodeAddress> ActiveInrs() const;       // in join order
  // Active INRs with their monotonic join orders, in join order. Orders are
  // never reused: an INR that expires and re-registers gets a fresh, larger
  // order, which is how resolvers detect that their registration lapsed.
  std::vector<std::pair<NodeAddress, uint64_t>> ActiveInrsOrdered() const;
  std::vector<NodeAddress> Candidates() const;
  NodeAddress InrForVspace(const std::string& vspace) const;
  // Every non-suspect active registrant routing `vspace`, in join order
  // (front = primary). Falls back to suspects when nobody else routes the
  // space — a suspect copy beats a void.
  std::vector<NodeAddress> ReplicaSetForVspace(const std::string& vspace) const;
  bool IsSuspect(const NodeAddress& inr) const;
  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  struct Registration {
    NodeAddress inr;
    uint64_t join_order;
    std::vector<std::string> vspaces;
    TimePoint expires;
  };

  void OnMessage(const NodeAddress& src, const Bytes& data);
  void HandleRegister(const DsrRegister& reg);
  void HandleDeadReport(const DsrDeadInrReport& report);
  void SweepExpired();

  Executor* executor_;
  Transport* transport_;
  DsrConfig config_;
  uint64_t next_join_order_ = 1;
  std::map<NodeAddress, Registration> active_;
  std::map<NodeAddress, TimePoint> candidates_;  // expiry (TimePoint::max for static)
  std::map<NodeAddress, TimePoint> suspects_;    // dead-reported, until this time
  TaskId sweep_task_ = kInvalidTaskId;
  MetricsRegistry metrics_;
};

}  // namespace ins

#endif  // INS_OVERLAY_DSR_H_
