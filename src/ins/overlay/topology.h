// Self-configuring spanning-tree overlay (paper §2.4).
//
// Join: a new INR registers with the DSR, fetches the active-INR list,
// INR-pings every active resolver that joined before it, and peers with the
// minimum-RTT one. The DSR hands every joiner the same list in linear join
// order, so each node after the first adds exactly one link: n nodes, n-1
// links, connected — a spanning tree by construction. Restricting parent
// candidates to earlier joiners keeps the construction cycle-free even when
// several nodes re-join concurrently after failures.
//
// Maintenance: neighbors exchange keepalive pings; a neighbor that misses
// several keepalives is declared down and dropped. If the lost neighbor was
// this node's parent (the peer it joined through), the node re-runs the join
// procedure, reconnecting the tree. Join and re-join retries use jittered
// exponential backoff (common/backoff.h) so a healed partition does not
// trigger a thundering herd of simultaneous re-joins.
//
// Split healing: a node that believes it is the tree root (joined, no
// parent) periodically re-fetches the active list; if a resolver earlier in
// join order exists — e.g. the other half of a healed partition — the root
// demotes itself and adopts a parent there, merging the two trees. The DSR's
// join orders are monotonic and never reused, so a node whose own order
// changed between responses knows its registration lapsed (it expired during
// a partition and re-registered); before such a node adds a *new* parent
// edge it first closes its existing edges, because ordering relationships
// those edges were built on may be stale (a former descendant may now order
// earlier, and adopting it over a fresh edge would close a cycle).
//
// Relaxation (the paper's announced future-work improvement, implemented
// here as an option): nodes periodically re-ping the active set and switch
// their parent link to a measurably better peer. To keep the topology a tree
// (no cycles), a node only ever adopts a parent that joined *before* it in
// the DSR's linear order.

#ifndef INS_OVERLAY_TOPOLOGY_H_
#define INS_OVERLAY_TOPOLOGY_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ins/common/backoff.h"
#include "ins/common/executor.h"
#include "ins/common/flight_recorder.h"
#include "ins/common/metrics.h"
#include "ins/common/node_address.h"
#include "ins/common/rng.h"
#include "ins/overlay/ping.h"
#include "ins/wire/messages.h"

namespace ins {

struct TopologyConfig {
  NodeAddress dsr;
  Duration ping_timeout = Milliseconds(500);
  Duration keepalive_interval = Seconds(5);
  int missed_keepalives_for_failure = 3;
  Duration dsr_refresh_interval = Seconds(20);
  uint32_t dsr_lifetime_s = 60;
  // DSR refreshes are shaved by up to this fraction so re-registrations from
  // many resolvers (e.g. after a DSR restart) do not arrive in lockstep.
  double register_jitter = 0.25;
  // Join / re-join retry pacing while not joined.
  BackoffConfig join_backoff{Milliseconds(1000), Seconds(30), 2.0, 0.3};
  // How often a root (joined, no parent) re-checks the DSR for an
  // earlier-joined resolver to merge under (partition split healing).
  Duration root_watch_interval = Seconds(20);
  // Salt mixed with the node address to seed per-node deterministic jitter.
  uint64_t rng_salt = 0;
  bool enable_relaxation = false;
  Duration relaxation_interval = Seconds(30);
  // Relaxation switches parent only when the candidate is better by this
  // factor (hysteresis against flapping).
  double relaxation_improvement = 0.8;
};

class TopologyManager {
 public:
  struct Neighbor {
    NodeAddress address;
    TimePoint last_heard{0};
    bool is_parent = false;  // the peer this node joined through
  };

  // `send` transmits envelopes from the owning node; `ping_agent` is shared
  // with the owning Inr (which routes kPong messages to it).
  TopologyManager(Executor* executor, PingAgent* ping_agent, SendFn send,
                  NodeAddress self, TopologyConfig config, MetricsRegistry* metrics);
  ~TopologyManager();

  // Begins the join procedure; `vspaces` go into the DSR registration.
  void Start(std::vector<std::string> vspaces);
  // Graceful leave: PeerClose to all neighbors, stop timers.
  void Stop();
  // Failure injection: stop timers and forget neighbors without telling
  // anyone (the node vanished).
  void CrashStop();

  // Updates the advertised vspace set (load-balancer delegation).
  void SetVspaces(std::vector<std::string> vspaces);

  // Dispatcher wire-in.
  // Any datagram from a current neighbor proves it is alive; the owning node
  // calls this for pings/pongs so keepalive death detection stays symmetric
  // (a one-sided view would otherwise never correct itself).
  void NoteNeighborAlive(const NodeAddress& src);
  // Called when a tree-edge-scoped message (a NameUpdate) arrives from
  // `src`. A non-neighbor sender — unless it is the parent we are mid-
  // handshake with — believes an edge exists that we do not: a half-open
  // edge, left by a PeerClose or keepalive verdict it never saw (e.g. lost
  // to a partition). Replies PeerClose so the sender re-joins cleanly.
  void NoteTreeEdgeTraffic(const NodeAddress& src);
  void HandleDsrListResponse(const DsrListResponse& resp);
  void HandlePeerRequest(const NodeAddress& src, const PeerRequest& req);
  void HandlePeerAccept(const NodeAddress& src, const PeerAccept& acc);
  void HandlePeerClose(const NodeAddress& src, const PeerClose& close);

  // Neighbor set and link metrics.
  std::vector<NodeAddress> NeighborAddresses() const;
  bool IsNeighbor(const NodeAddress& addr) const { return neighbors_.count(addr) > 0; }
  double LinkMetricMs(const NodeAddress& neighbor) const {
    return ping_agent_->LinkMetricMs(neighbor);
  }
  std::optional<NodeAddress> parent() const;
  bool joined() const { return joined_; }

  // Fired when a neighbor is added/removed (name discovery uses these to
  // send full-state updates to new neighbors and purge routes via dead ones).
  std::function<void(const NodeAddress&)> on_neighbor_up;
  std::function<void(const NodeAddress&)> on_neighbor_down;

  // When set, overlay edge churn (edge up/down, parent loss) lands in the
  // node's flight recorder.
  void AttachFlightRecorder(FlightRecorder* flight) { flight_ = flight; }

 private:
  void RegisterWithDsr();
  void RequestActiveList();
  // Watchdog with three modes: while not joined it restarts the join
  // procedure on a backoff schedule (lost DSR responses, lost peer
  // handshakes, partitions); while joined as root it polls the DSR for an
  // earlier-joined resolver to merge under; while joined with a parent it
  // idles cheaply.
  void EnsureJoinedTick();
  void ScheduleWatchdog(Duration delay);
  // Records our join order from a list response; flags a lapse when the
  // order changed (our DSR registration expired and was re-created).
  void NoteSelfOrder(const DsrListResponse& resp);
  // The parent link died (crash, partition): re-run the join procedure.
  void OnParentLost();
  void StartJoinProbe(const DsrListResponse& resp);
  void AdoptParent(const NodeAddress& parent);
  void AddNeighbor(const NodeAddress& addr, bool is_parent);
  void RemoveNeighbor(const NodeAddress& addr, bool notify_peer);
  // Closes every edge except `keep` (PeerClose to each): used before adding
  // a fresh parent edge when our join order lapsed and existing edges may
  // contradict the current order.
  void DissolveNeighborsExcept(const NodeAddress& keep);
  void KeepaliveTick();
  void RelaxationTick();
  void HandleRelaxationList(const DsrListResponse& resp);

  Executor* executor_;
  PingAgent* ping_agent_;
  SendFn send_;
  NodeAddress self_;
  TopologyConfig config_;
  MetricsRegistry* metrics_;
  FlightRecorder* flight_ = nullptr;
  Rng rng_;
  Backoff join_backoff_;

  std::vector<std::string> vspaces_;
  bool started_ = false;
  bool joined_ = false;
  uint64_t self_join_order_ = 0;  // last order observed for self (0 = never seen)
  bool order_lapsed_ = false;     // self order changed: old edges are suspect
  uint64_t next_request_id_ = 1;
  uint64_t join_request_id_ = 0;        // outstanding join/root-watch list request
  uint64_t relaxation_request_id_ = 0;  // outstanding relaxation list request
  NodeAddress requested_parent_;  // last peer we sent a PeerRequest to
  std::map<NodeAddress, Neighbor> neighbors_;
  std::vector<NodeAddress> last_active_list_;  // DSR order, for relaxation
  TaskId register_task_ = kInvalidTaskId;
  TaskId keepalive_task_ = kInvalidTaskId;
  TaskId relaxation_task_ = kInvalidTaskId;
  TaskId join_retry_task_ = kInvalidTaskId;
};

}  // namespace ins

#endif  // INS_OVERLAY_TOPOLOGY_H_
