#include "ins/overlay/dsr.h"

#include <algorithm>

#include "ins/common/logging.h"

namespace ins {

Dsr::Dsr(Executor* executor, Transport* transport, DsrConfig config)
    : executor_(executor), transport_(transport), config_(config) {
  transport_->SetReceiveHandler(
      [this](const NodeAddress& src, const Bytes& data) { OnMessage(src, data); });
  sweep_task_ = executor_->ScheduleAfter(config_.expiry_sweep_interval, [this] { SweepExpired(); });
}

Dsr::~Dsr() {
  executor_->Cancel(sweep_task_);
  transport_->SetReceiveHandler(nullptr);
}

void Dsr::AddCandidate(const NodeAddress& node) {
  candidates_[node] = TimePoint::max();
}

std::vector<std::pair<NodeAddress, uint64_t>> Dsr::ActiveInrsOrdered() const {
  std::vector<std::pair<NodeAddress, uint64_t>> out;
  out.reserve(active_.size());
  for (const auto& [addr, reg] : active_) {
    out.emplace_back(reg.inr, reg.join_order);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return out;
}

std::vector<NodeAddress> Dsr::ActiveInrs() const {
  std::vector<NodeAddress> out;
  for (const auto& [inr, order] : ActiveInrsOrdered()) {
    out.push_back(inr);
  }
  return out;
}

std::vector<NodeAddress> Dsr::Candidates() const {
  std::vector<NodeAddress> out;
  out.reserve(candidates_.size());
  for (const auto& [addr, exp] : candidates_) {
    out.push_back(addr);
  }
  return out;
}

NodeAddress Dsr::InrForVspace(const std::string& vspace) const {
  // First registrant (in join order) routing the space wins; this is also
  // the tie-break that keeps two INRs from both claiming a space for long.
  // Suspects lose to any non-suspect registrant but still beat a void.
  const Registration* best = nullptr;
  const Registration* best_suspect = nullptr;
  for (const auto& [addr, reg] : active_) {
    if (std::find(reg.vspaces.begin(), reg.vspaces.end(), vspace) == reg.vspaces.end()) {
      continue;
    }
    if (IsSuspect(reg.inr)) {
      if (best_suspect == nullptr || reg.join_order < best_suspect->join_order) {
        best_suspect = &reg;
      }
      continue;
    }
    if (best == nullptr || reg.join_order < best->join_order) {
      best = &reg;
    }
  }
  if (best == nullptr) {
    best = best_suspect;
  }
  return best != nullptr ? best->inr : kInvalidAddress;
}

bool Dsr::IsSuspect(const NodeAddress& inr) const {
  auto it = suspects_.find(inr);
  return it != suspects_.end() && it->second > executor_->Now();
}

std::vector<NodeAddress> Dsr::ReplicaSetForVspace(const std::string& vspace) const {
  std::vector<std::pair<uint64_t, NodeAddress>> members;
  std::vector<std::pair<uint64_t, NodeAddress>> suspects;
  for (const auto& [addr, reg] : active_) {
    if (std::find(reg.vspaces.begin(), reg.vspaces.end(), vspace) == reg.vspaces.end()) {
      continue;
    }
    (IsSuspect(reg.inr) ? suspects : members).emplace_back(reg.join_order, reg.inr);
  }
  if (members.empty()) {
    members = std::move(suspects);
  }
  std::sort(members.begin(), members.end());
  std::vector<NodeAddress> out;
  out.reserve(members.size());
  for (const auto& [order, inr] : members) {
    out.push_back(inr);
  }
  return out;
}

void Dsr::HandleRegister(const DsrRegister& reg) {
  if (reg.lifetime_s == 0) {
    // Explicit unregister (graceful INR termination).
    if (active_.erase(reg.inr) > 0) {
      metrics_.Increment("dsr.unregisters");
    }
    candidates_.erase(reg.inr);
    return;
  }
  TimePoint expires = executor_->Now() + Seconds(reg.lifetime_s);
  if (!reg.active) {
    candidates_[reg.inr] = expires;
    metrics_.Increment("dsr.candidate_registrations");
    return;
  }
  auto it = active_.find(reg.inr);
  if (it == active_.end()) {
    Registration r;
    r.inr = reg.inr;
    r.join_order = next_join_order_++;
    r.vspaces = reg.vspaces;
    r.expires = expires;
    active_.emplace(reg.inr, std::move(r));
    // An INR that becomes active stops being a spawn candidate.
    candidates_.erase(reg.inr);
    metrics_.Increment("dsr.joins");
    INS_LOG(kDebug) << "DSR: " << reg.inr.ToString() << " joined ("
                    << active_.size() << " active)";
  } else {
    it->second.vspaces = reg.vspaces;
    it->second.expires = expires;
    metrics_.Increment("dsr.refreshes");
  }
  // A registration (new or refreshed) is proof of life: it outranks any
  // replica's silence-based suspicion.
  if (suspects_.erase(reg.inr) > 0) {
    metrics_.Increment("dsr.suspects_cleared");
  }
}

void Dsr::HandleDeadReport(const DsrDeadInrReport& report) {
  // A node cannot report itself, and reports about unknown nodes carry no
  // information worth remembering.
  if (report.dead == report.reporter || active_.find(report.dead) == active_.end()) {
    metrics_.Increment("dsr.dead_reports_ignored");
    return;
  }
  suspects_[report.dead] = executor_->Now() + config_.dead_suspect_ttl;
  metrics_.Increment("dsr.dead_reports");
  INS_LOG(kDebug) << "DSR: " << report.dead.ToString() << " reported dead by "
                  << report.reporter.ToString();
}

void Dsr::OnMessage(const NodeAddress& src, const Bytes& data) {
  auto env = DecodeMessage(data);
  if (!env.ok()) {
    metrics_.Increment("dsr.decode_errors");
    return;
  }
  if (const auto* reg = std::get_if<DsrRegister>(&env->body)) {
    HandleRegister(*reg);
    return;
  }
  if (const auto* list = std::get_if<DsrListRequest>(&env->body)) {
    DsrListResponse resp;
    resp.request_id = list->request_id;
    for (const auto& [inr, order] : ActiveInrsOrdered()) {
      resp.active_inrs.push_back(inr);
      resp.join_orders.push_back(order);
    }
    transport_->Send(src, Encode(resp));
    metrics_.Increment("dsr.list_requests");
    return;
  }
  if (const auto* vq = std::get_if<DsrVspaceRequest>(&env->body)) {
    DsrVspaceResponse resp;
    resp.request_id = vq->request_id;
    resp.vspace = vq->vspace;
    resp.inr = InrForVspace(vq->vspace);
    transport_->Send(src, Encode(resp));
    metrics_.Increment("dsr.vspace_requests");
    return;
  }
  if (const auto* cq = std::get_if<DsrCandidatesRequest>(&env->body)) {
    DsrCandidatesResponse resp;
    resp.request_id = cq->request_id;
    resp.candidates = Candidates();
    transport_->Send(src, Encode(resp));
    metrics_.Increment("dsr.candidate_requests");
    return;
  }
  if (const auto* rq = std::get_if<DsrReplicaSetRequest>(&env->body)) {
    DsrReplicaSetResponse resp;
    resp.request_id = rq->request_id;
    resp.vspace = rq->vspace;
    resp.replicas = ReplicaSetForVspace(rq->vspace);
    for (const auto& [inr, order] : ActiveInrsOrdered()) {
      if (std::find(resp.replicas.begin(), resp.replicas.end(), inr) ==
              resp.replicas.end() &&
          !IsSuspect(inr)) {
        resp.candidates.push_back(inr);
      }
    }
    transport_->Send(src, Encode(resp));
    metrics_.Increment("dsr.replica_set_requests");
    return;
  }
  if (const auto* dead = std::get_if<DsrDeadInrReport>(&env->body)) {
    HandleDeadReport(*dead);
    return;
  }
  if (const auto* aq = std::get_if<DsrAssignmentsRequest>(&env->body)) {
    // Crash-recovery query: what does this INR's (soft-state) registration
    // still route? An expired or never-registered INR gets an empty answer.
    DsrAssignmentsResponse resp;
    resp.request_id = aq->request_id;
    if (auto it = active_.find(aq->inr); it != active_.end()) {
      resp.vspaces = it->second.vspaces;
      // Asking for assignments means the INR rebooted empty. Its seniority
      // must reboot with it: keeping the pre-crash join order would let a
      // journal-less shell leapfrog surviving replica-set members (sets are
      // the first k registrants by join order) and become a primary that
      // black-holes tunnelled lookups. Demoting to the back of the line
      // makes the survivors the set and lets the rebooted node re-earn a
      // slot (or relinquish) through the normal recruitment path.
      it->second.join_order = next_join_order_++;
      metrics_.Increment("dsr.seniority_resets");
    }
    transport_->Send(src, Encode(resp));
    metrics_.Increment("dsr.assignments_requests");
    return;
  }
  metrics_.Increment("dsr.unexpected_messages");
}

void Dsr::SweepExpired() {
  TimePoint now = executor_->Now();
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.expires < now) {
      INS_LOG(kDebug) << "DSR: " << it->first.ToString() << " expired";
      metrics_.Increment("dsr.expirations");
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = candidates_.begin(); it != candidates_.end();) {
    if (it->second < now) {
      it = candidates_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = suspects_.begin(); it != suspects_.end();) {
    if (it->second < now) {
      it = suspects_.erase(it);
    } else {
      ++it;
    }
  }
  sweep_task_ = executor_->ScheduleAfter(config_.expiry_sweep_interval, [this] { SweepExpired(); });
}

}  // namespace ins
