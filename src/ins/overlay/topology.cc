#include "ins/overlay/topology.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "ins/common/logging.h"

namespace ins {

namespace {
// Per-node deterministic seed: same cluster seed + same address = same
// jitter sequence, so simulated runs stay bit-reproducible.
uint64_t JitterSeed(uint64_t salt, const NodeAddress& self) {
  return salt ^ ((static_cast<uint64_t>(self.ip) << 16) | self.port) ^
         0x746f706f6c6f6779ull;  // "topology"
}
}  // namespace

TopologyManager::TopologyManager(Executor* executor, PingAgent* ping_agent, SendFn send,
                                 NodeAddress self, TopologyConfig config,
                                 MetricsRegistry* metrics)
    : executor_(executor),
      ping_agent_(ping_agent),
      send_(std::move(send)),
      self_(self),
      config_(config),
      metrics_(metrics),
      rng_(JitterSeed(config.rng_salt, self)),
      join_backoff_(config.join_backoff, &rng_) {}

TopologyManager::~TopologyManager() {
  executor_->Cancel(register_task_);
  executor_->Cancel(keepalive_task_);
  executor_->Cancel(relaxation_task_);
  executor_->Cancel(join_retry_task_);
}

void TopologyManager::Start(std::vector<std::string> vspaces) {
  vspaces_ = std::move(vspaces);
  started_ = true;
  join_backoff_.Reset();
  RegisterWithDsr();
  RequestActiveList();
  keepalive_task_ =
      executor_->ScheduleAfter(config_.keepalive_interval, [this] { KeepaliveTick(); });
  ScheduleWatchdog(join_backoff_.Next());
  if (config_.enable_relaxation) {
    relaxation_task_ =
        executor_->ScheduleAfter(config_.relaxation_interval, [this] { RelaxationTick(); });
  }
}

void TopologyManager::Stop() {
  if (!started_) {
    return;
  }
  started_ = false;
  joined_ = false;
  self_join_order_ = 0;
  order_lapsed_ = false;
  requested_parent_ = kInvalidAddress;
  executor_->Cancel(register_task_);
  executor_->Cancel(keepalive_task_);
  executor_->Cancel(relaxation_task_);
  executor_->Cancel(join_retry_task_);
  register_task_ = keepalive_task_ = relaxation_task_ = join_retry_task_ = kInvalidTaskId;
  std::vector<NodeAddress> peers = NeighborAddresses();
  for (const NodeAddress& p : peers) {
    RemoveNeighbor(p, /*notify_peer=*/true);
  }
}

void TopologyManager::CrashStop() {
  started_ = false;
  joined_ = false;
  self_join_order_ = 0;
  order_lapsed_ = false;
  requested_parent_ = kInvalidAddress;
  executor_->Cancel(register_task_);
  executor_->Cancel(keepalive_task_);
  executor_->Cancel(relaxation_task_);
  executor_->Cancel(join_retry_task_);
  register_task_ = keepalive_task_ = relaxation_task_ = join_retry_task_ = kInvalidTaskId;
  neighbors_.clear();
}

void TopologyManager::SetVspaces(std::vector<std::string> vspaces) {
  vspaces_ = std::move(vspaces);
  if (started_) {
    RegisterWithDsr();  // push the new set immediately
  }
}

void TopologyManager::RegisterWithDsr() {
  DsrRegister reg;
  reg.inr = self_;
  reg.active = true;
  reg.vspaces = vspaces_;
  reg.lifetime_s = config_.dsr_lifetime_s;
  send_(config_.dsr, Envelope{MessageBody(reg)});

  executor_->Cancel(register_task_);
  // Jittered refresh (never above the nominal interval, so the soft-state
  // lifetime still covers it): decorrelates re-registration bursts after a
  // partition heal or a DSR restart.
  register_task_ = executor_->ScheduleAfter(
      ApplyJitter(config_.dsr_refresh_interval, config_.register_jitter, rng_),
      [this] { RegisterWithDsr(); });
}

void TopologyManager::RequestActiveList() {
  join_request_id_ = next_request_id_++;
  DsrListRequest req;
  req.request_id = join_request_id_;
  send_(config_.dsr, Envelope{MessageBody(req)});
}

void TopologyManager::NoteSelfOrder(const DsrListResponse& resp) {
  if (resp.join_orders.size() != resp.active_inrs.size()) {
    return;  // malformed; position information alone is not trustworthy
  }
  for (size_t i = 0; i < resp.active_inrs.size(); ++i) {
    if (resp.active_inrs[i] != self_) {
      continue;
    }
    uint64_t order = resp.join_orders[i];
    if (self_join_order_ != 0 && order != self_join_order_) {
      // Our registration expired (partition, DSR restart) and was re-created
      // under a fresh order: edges built on the old order are now suspect.
      order_lapsed_ = true;
      metrics_->Increment("topology.order_lapses");
    }
    self_join_order_ = order;
    return;
  }
}

void TopologyManager::NoteNeighborAlive(const NodeAddress& src) {
  auto it = neighbors_.find(src);
  if (it != neighbors_.end()) {
    it->second.last_heard = executor_->Now();
  }
}

void TopologyManager::NoteTreeEdgeTraffic(const NodeAddress& src) {
  auto it = neighbors_.find(src);
  if (it != neighbors_.end()) {
    it->second.last_heard = executor_->Now();
    return;
  }
  if (src == requested_parent_) {
    return;  // edge forming: their full-state push can outrun the PeerAccept
  }
  if (!started_) {
    return;
  }
  metrics_->Increment("topology.half_open_repairs");
  send_(src, Envelope{MessageBody(PeerClose{self_})});
}

void TopologyManager::HandleDsrListResponse(const DsrListResponse& resp) {
  NoteSelfOrder(resp);
  if (resp.request_id == join_request_id_ && join_request_id_ != 0) {
    join_request_id_ = 0;
    last_active_list_ = resp.active_inrs;
    if (!joined_ || !parent().has_value()) {
      // Joining, re-joining after parent loss, or a root checking whether a
      // healed partition exposed an earlier tree to merge under.
      StartJoinProbe(resp);
    }
    return;
  }
  if (resp.request_id == relaxation_request_id_) {
    relaxation_request_id_ = 0;
    last_active_list_ = resp.active_inrs;
    HandleRelaxationList(resp);
    return;
  }
}

void TopologyManager::StartJoinProbe(const DsrListResponse& resp) {
  // Parent candidates are the resolvers that joined strictly before us: the
  // DSR's linear order is what makes the overlay a tree, and adopting a
  // later joiner could close a cycle when several nodes re-join at once. If
  // we are absent from the list (our registration lapsed or is in flight),
  // every listed resolver registered before our next refresh will — so all
  // of them are safe candidates.
  std::vector<NodeAddress> candidates;
  for (const NodeAddress& a : resp.active_inrs) {
    if (a == self_) {
      break;
    }
    candidates.push_back(a);
  }
  if (candidates.empty()) {
    // Nobody joined before us: we are (or remain) the tree root. Withdraw
    // any outstanding parent request — a stale requested_parent_ would both
    // leak a half-open edge on the other side and permanently shield that
    // peer from NoteTreeEdgeTraffic's repair path.
    if (requested_parent_.IsValid() && neighbors_.count(requested_parent_) == 0) {
      send_(requested_parent_, Envelope{MessageBody(PeerClose{self_})});
    }
    requested_parent_ = kInvalidAddress;
    if (!joined_) {
      joined_ = true;
      join_backoff_.Reset();
      metrics_->Increment("topology.joined_as_root");
    }
    return;
  }
  if (joined_) {
    metrics_->Increment("topology.root_watch_probes");
  }

  // INR-ping every candidate; peer with the minimum-RTT responder.
  struct Probe {
    size_t outstanding;
    double best_ms = std::numeric_limits<double>::infinity();
    NodeAddress best;
  };
  auto probe = std::make_shared<Probe>();
  probe->outstanding = candidates.size();
  for (const NodeAddress& target : candidates) {
    ping_agent_->SendPing(target, config_.ping_timeout,
                          [this, probe, target](std::optional<Duration> rtt) {
                            if (rtt.has_value() && ToMillis(*rtt) < probe->best_ms) {
                              probe->best_ms = ToMillis(*rtt);
                              probe->best = target;
                            }
                            if (--probe->outstanding > 0) {
                              return;
                            }
                            if (!probe->best.IsValid()) {
                              // Everyone timed out (crashed, or across a
                              // partition); the watchdog retries with
                              // backoff, and their DSR entries expire.
                              metrics_->Increment("topology.join_retries");
                              return;
                            }
                            AdoptParent(probe->best);
                          });
  }
}

void TopologyManager::ScheduleWatchdog(Duration delay) {
  executor_->Cancel(join_retry_task_);
  join_retry_task_ = executor_->ScheduleAfter(delay, [this] { EnsureJoinedTick(); });
}

void TopologyManager::EnsureJoinedTick() {
  if (!started_) {
    return;
  }
  if (!joined_) {
    metrics_->Increment("topology.join_watchdog_retries");
    RequestActiveList();
    ScheduleWatchdog(join_backoff_.Next());
    return;
  }
  if (!parent().has_value()) {
    // Root watch: a healed partition (or DSR restart) may have exposed a
    // resolver that orders before us; poll and merge under it if so.
    RequestActiveList();
    ScheduleWatchdog(ApplyJitter(config_.root_watch_interval, 0.25, rng_));
    return;
  }
  join_backoff_.Reset();
  ScheduleWatchdog(config_.keepalive_interval * 2);
}

void TopologyManager::OnParentLost() {
  joined_ = false;
  join_backoff_.Reset();
  metrics_->Increment("topology.rejoins");
  if (flight_ != nullptr) {
    flight_->Record(executor_->Now(), FlightEventKind::kParentLost,
                    FlightSeverity::kWarning, "rejoining");
  }
  RequestActiveList();
  ScheduleWatchdog(join_backoff_.Next());
}

void TopologyManager::AdoptParent(const NodeAddress& parent) {
  // If an earlier PeerRequest went to someone else (handshake lost, or a
  // retry picked a different peer), withdraw it so no stale half-open edge
  // survives on the other side.
  if (requested_parent_.IsValid() && requested_parent_ != parent &&
      neighbors_.count(requested_parent_) == 0) {
    send_(requested_parent_, Envelope{MessageBody(PeerClose{self_})});
  }
  requested_parent_ = parent;
  metrics_->Increment("topology.peer_requests_sent");
  send_(parent, Envelope{MessageBody(PeerRequest{self_})});
}

void TopologyManager::HandlePeerRequest(const NodeAddress& src, const PeerRequest& req) {
  (void)src;
  // A fresh PeerRequest over an edge we think already exists means the
  // requester no longer holds its side: it crashed and restarted on the same
  // address before our keepalives noticed, or its accept never reached us on
  // a previous attempt. Re-adding in place would keep the stale link state —
  // most dangerously a parent role now pointing at what is about to become
  // our child (the restarted node chose US as parent), and would skip
  // on_neighbor_up, leaving the restarted node without the full-state push
  // its empty name tree depends on. Reset the edge so the add below runs the
  // complete new-neighbor path, and re-join if the stale edge was our parent.
  if (auto it = neighbors_.find(req.requester); it != neighbors_.end()) {
    const bool was_parent = it->second.is_parent;
    metrics_->Increment("topology.edge_resets");
    RemoveNeighbor(req.requester, /*notify_peer=*/false);
    if (was_parent && started_) {
      OnParentLost();
    }
  }
  AddNeighbor(req.requester, /*is_parent=*/false);
  send_(req.requester, Envelope{MessageBody(PeerAccept{self_})});
}

void TopologyManager::HandlePeerAccept(const NodeAddress& src, const PeerAccept& acc) {
  (void)src;
  const bool already_neighbor = neighbors_.count(acc.accepter) > 0;
  if (acc.accepter != requested_parent_) {
    if (already_neighbor) {
      neighbors_[acc.accepter].last_heard = executor_->Now();
      return;
    }
    // Accept for a request we since withdrew: refuse, so no half-open edge
    // survives on the accepter's side.
    metrics_->Increment("topology.stale_accepts");
    send_(acc.accepter, Envelope{MessageBody(PeerClose{self_})});
    return;
  }
  if (order_lapsed_ && !already_neighbor) {
    // Our join order lapsed and we are about to add a brand-new edge: close
    // the old edges first. They were built under the old order, and one of
    // them could connect us to a subtree that now contains our new parent —
    // keeping both would close a cycle. The closed children re-join under
    // the current order.
    DissolveNeighborsExcept(acc.accepter);
    metrics_->Increment("topology.lapse_dissolves");
  }
  order_lapsed_ = false;
  AddNeighbor(acc.accepter, /*is_parent=*/true);
  // Handshake complete: the edge is in neighbors_, which now covers the
  // forming-edge race in NoteTreeEdgeTraffic. Keeping requested_parent_ set
  // past this point is dangerous — if a later keepalive timeout removes this
  // peer while we are root, its PeerKeepalives would hit the forming-edge
  // shield forever and the half-open repair (PeerClose) would never fire,
  // leaving the peer with a permanent stale parent edge.
  requested_parent_ = kInvalidAddress;
  if (!joined_) {
    joined_ = true;
    metrics_->Increment("topology.joined");
  }
  join_backoff_.Reset();
}

void TopologyManager::HandlePeerClose(const NodeAddress& src, const PeerClose& close) {
  (void)src;
  if (neighbors_.count(close.closer) == 0) {
    return;
  }
  bool was_parent = neighbors_[close.closer].is_parent;
  RemoveNeighbor(close.closer, /*notify_peer=*/false);
  if (was_parent && started_) {
    OnParentLost();  // reconnect the tree
  }
}

void TopologyManager::AddNeighbor(const NodeAddress& addr, bool is_parent) {
  auto [it, inserted] = neighbors_.try_emplace(addr);
  it->second.address = addr;
  it->second.last_heard = executor_->Now();
  if (is_parent) {
    // At most one parent at a time.
    for (auto& [a, n] : neighbors_) {
      n.is_parent = false;
    }
    it->second.is_parent = true;
  }
  if (inserted) {
    metrics_->Increment("topology.neighbors_added");
    metrics_->SetGauge("topology.neighbors", static_cast<int64_t>(neighbors_.size()));
    if (flight_ != nullptr) {
      flight_->Record(executor_->Now(), FlightEventKind::kEdgeRepair, FlightSeverity::kInfo,
                      is_parent ? "parent" : "child", addr);
    }
    if (on_neighbor_up) {
      on_neighbor_up(addr);
    }
  }
}

void TopologyManager::RemoveNeighbor(const NodeAddress& addr, bool notify_peer) {
  auto it = neighbors_.find(addr);
  if (it == neighbors_.end()) {
    return;
  }
  neighbors_.erase(it);
  if (notify_peer) {
    send_(addr, Envelope{MessageBody(PeerClose{self_})});
  }
  metrics_->Increment("topology.neighbors_removed");
  metrics_->SetGauge("topology.neighbors", static_cast<int64_t>(neighbors_.size()));
  if (flight_ != nullptr) {
    flight_->Record(executor_->Now(), FlightEventKind::kEdgeDown, FlightSeverity::kWarning,
                    notify_peer ? "closed" : "detected", addr);
  }
  if (on_neighbor_down) {
    on_neighbor_down(addr);
  }
}

void TopologyManager::DissolveNeighborsExcept(const NodeAddress& keep) {
  std::vector<NodeAddress> peers = NeighborAddresses();
  for (const NodeAddress& p : peers) {
    if (p != keep) {
      RemoveNeighbor(p, /*notify_peer=*/true);
    }
  }
}

void TopologyManager::KeepaliveTick() {
  TimePoint now = executor_->Now();
  Duration dead_after = config_.keepalive_interval * config_.missed_keepalives_for_failure;

  std::vector<NodeAddress> dead;
  for (auto& [addr, n] : neighbors_) {
    if (now - n.last_heard > dead_after) {
      dead.push_back(addr);
    }
  }
  for (const NodeAddress& addr : dead) {
    bool was_parent = neighbors_[addr].is_parent;
    INS_LOG(kDebug) << self_.ToString() << ": neighbor " << addr.ToString() << " failed";
    metrics_->Increment("topology.neighbor_failures");
    RemoveNeighbor(addr, /*notify_peer=*/false);
    if (was_parent && started_) {
      OnParentLost();
    }
  }

  for (auto& [addr, n] : neighbors_) {
    // The keepalive asserts the edge. If the peer lost it — most notably by
    // crashing and restarting on the same address, where it would still
    // answer our pings — it replies PeerClose and we re-join cleanly.
    send_(addr, Envelope{MessageBody(PeerKeepalive{self_})});
    NodeAddress target = addr;
    ping_agent_->SendPing(target, config_.ping_timeout,
                          [this, target](std::optional<Duration> rtt) {
                            if (!rtt.has_value()) {
                              return;
                            }
                            auto it = neighbors_.find(target);
                            if (it != neighbors_.end()) {
                              it->second.last_heard = executor_->Now();
                            }
                          });
  }

  keepalive_task_ =
      executor_->ScheduleAfter(config_.keepalive_interval, [this] { KeepaliveTick(); });
}

void TopologyManager::RelaxationTick() {
  if (joined_ && parent().has_value()) {
    relaxation_request_id_ = next_request_id_++;
    DsrListRequest req;
    req.request_id = relaxation_request_id_;
    send_(config_.dsr, Envelope{MessageBody(req)});
  }
  relaxation_task_ =
      executor_->ScheduleAfter(config_.relaxation_interval, [this] { RelaxationTick(); });
}

void TopologyManager::HandleRelaxationList(const DsrListResponse& resp) {
  std::optional<NodeAddress> current_parent = parent();
  if (!current_parent.has_value()) {
    return;
  }
  if (std::find(resp.active_inrs.begin(), resp.active_inrs.end(), self_) ==
      resp.active_inrs.end()) {
    // Our registration lapsed: the list carries no position for us, so the
    // "joined before us" rule cannot be evaluated. Skip this round.
    return;
  }
  // Only peers that joined before us are cycle-safe parent candidates.
  std::vector<NodeAddress> candidates;
  for (const NodeAddress& a : resp.active_inrs) {
    if (a == self_) {
      break;
    }
    if (a != *current_parent) {
      candidates.push_back(a);
    }
  }
  if (candidates.empty()) {
    return;
  }

  struct Probe {
    size_t outstanding;
    double best_ms = std::numeric_limits<double>::infinity();
    NodeAddress best;
  };
  auto probe = std::make_shared<Probe>();
  probe->outstanding = candidates.size() + 1;  // +1 for re-probing the parent

  auto finish = [this, probe, parent_addr = *current_parent](double parent_ms) {
    if (!probe->best.IsValid()) {
      return;
    }
    if (probe->best_ms < parent_ms * config_.relaxation_improvement) {
      INS_LOG(kDebug) << self_.ToString() << ": relaxation switches parent "
                      << parent_addr.ToString() << " -> " << probe->best.ToString();
      metrics_->Increment("topology.relaxation_switches");
      RemoveNeighbor(parent_addr, /*notify_peer=*/true);
      AdoptParent(probe->best);
    }
  };

  auto parent_ms = std::make_shared<double>(std::numeric_limits<double>::infinity());
  ping_agent_->SendPing(*current_parent, config_.ping_timeout,
                        [probe, parent_ms, finish](std::optional<Duration> rtt) {
                          if (rtt.has_value()) {
                            *parent_ms = ToMillis(*rtt);
                          }
                          if (--probe->outstanding == 0) {
                            finish(*parent_ms);
                          }
                        });
  for (const NodeAddress& target : candidates) {
    ping_agent_->SendPing(target, config_.ping_timeout,
                          [probe, target, parent_ms, finish](std::optional<Duration> rtt) {
                            if (rtt.has_value() && ToMillis(*rtt) < probe->best_ms) {
                              probe->best_ms = ToMillis(*rtt);
                              probe->best = target;
                            }
                            if (--probe->outstanding == 0) {
                              finish(*parent_ms);
                            }
                          });
  }
}

std::vector<NodeAddress> TopologyManager::NeighborAddresses() const {
  std::vector<NodeAddress> out;
  out.reserve(neighbors_.size());
  for (const auto& [addr, n] : neighbors_) {
    out.push_back(addr);
  }
  return out;
}

std::optional<NodeAddress> TopologyManager::parent() const {
  for (const auto& [addr, n] : neighbors_) {
    if (n.is_parent) {
      return addr;
    }
  }
  return std::nullopt;
}

}  // namespace ins
