// INR-pings (paper §2.4): small probe messages between resolvers used to
// measure processing+network round-trip time. The smoothed RTT is the metric
// the spanning-tree overlay optimizes and the per-name route metric that
// accumulates hop by hop for intentional multicast.

#ifndef INS_OVERLAY_PING_H_
#define INS_OVERLAY_PING_H_

#include <functional>
#include <optional>
#include <unordered_map>

#include "ins/common/executor.h"
#include "ins/common/node_address.h"
#include "ins/wire/messages.h"

namespace ins {

// Sends envelopes on behalf of a component; bound to the owning node's
// transport by the Inr (or test harness).
using SendFn = std::function<void(const NodeAddress& destination, const Envelope& message)>;

class PingAgent {
 public:
  using PingCallback = std::function<void(std::optional<Duration> rtt)>;

  PingAgent(Executor* executor, SendFn send);
  ~PingAgent();

  // Probes `target`; invokes `cb` exactly once with the measured RTT, or
  // nullopt after `timeout`. Multiple concurrent probes are fine.
  void SendPing(const NodeAddress& target, Duration timeout, PingCallback cb);

  // Wire-in points for the owning node's dispatcher.
  void HandlePong(const NodeAddress& source, const Pong& pong);
  // Responder side: every node answers pings immediately.
  static Pong PongFor(const Ping& ping) { return Pong{ping.nonce, ping.send_time_us}; }

  // Exponentially weighted smoothed RTT of past probes to `peer`.
  std::optional<Duration> SmoothedRtt(const NodeAddress& peer) const;

  // Link metric used for route accumulation: smoothed RTT in milliseconds
  // (the paper's "currently the INR-to-INR round-trip latency"). Falls back
  // to a large value for peers never measured.
  double LinkMetricMs(const NodeAddress& peer) const;

  size_t pending_count() const { return pending_.size(); }

 private:
  struct Pending {
    NodeAddress target;
    TimePoint sent_at;
    TaskId timeout_task;
    PingCallback callback;
  };

  Executor* executor_;
  SendFn send_;
  uint64_t next_nonce_ = 1;
  std::unordered_map<uint64_t, Pending> pending_;
  std::unordered_map<NodeAddress, Duration, NodeAddressHash> smoothed_;
};

}  // namespace ins

#endif  // INS_OVERLAY_PING_H_
