// Merges per-node trace rings into causal per-packet journeys.
//
// Each resolver records TraceEvents for sampled packets into its own ring
// (common/trace.h); node-local order is only meaningful per node. The
// collector groups events by trace id and orders them by simulated time
// (identical under the discrete-event clock across nodes), yielding the
// packet's journey: which resolvers touched it, where it queued, where it was
// delivered — or the exact drop reason when it was not. Journeys render as
// text for failure logs and as Chrome trace-event JSON (chrome://tracing,
// Perfetto) for visual inspection.

#ifndef INS_HARNESS_TRACE_COLLECTOR_H_
#define INS_HARNESS_TRACE_COLLECTOR_H_

#include <array>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ins/common/metrics.h"
#include "ins/common/trace.h"

namespace ins {

struct PacketJourney {
  uint64_t trace_id = 0;
  std::vector<TraceEvent> events;  // ordered by time, then insertion

  bool delivered() const;
  bool dropped() const;
  // The first kDropped event's detail — a forwarding.drop.* suffix such as
  // "no_match" or "shed_class2" — or "" when the journey was not dropped.
  const char* drop_reason() const;
  // Span from the first event to the last; end-to-end delivery time for a
  // delivered journey.
  Duration Elapsed() const;

  // One pipeline stage the packet spent time in: the gap between two
  // consecutive journey events, classified by the later event's kind
  // (common/trace.h StageForTransition). `node` is where the stage ended —
  // for kTransport that is the receiver of the hop.
  struct StageSpan {
    LatencyStage stage = LatencyStage::kIngress;
    TimePoint begin{0};
    TimePoint end{0};
    NodeAddress node;

    Duration span() const { return end - begin; }
  };
  // The journey's stage breakdown, in time order. Gaps with no stage mapping
  // (a gap ending in kDropped) are omitted; for a delivered journey the spans
  // partition [first event, last event] exactly, so their sum reconciles
  // against Elapsed().
  std::vector<StageSpan> StageSpans() const;

  std::string ToString() const;
};

// Aggregated per-stage latency attribution over a set of journeys.
struct StageAttribution {
  std::array<Histogram, kLatencyStageCount> stage_us;  // one sample per span
  uint64_t journeys = 0;
  uint64_t attributed_total_us = 0;  // sum of every classified span
  uint64_t elapsed_total_us = 0;     // sum of Elapsed() over the journeys

  // attributed / elapsed: how much measured end-to-end latency the stage
  // spans account for (1.0 when every gap classified).
  double CoverageFraction() const;
  // Per-stage table: count, total, share of end-to-end, p50/p99.
  std::string Table() const;
};

class TraceCollector {
 public:
  // Folds one node's retained events into the collector. Rings may be added
  // in any order and more than once per run boundary is NOT supported (events
  // would double); collect once, after the traffic of interest.
  void Add(const TraceRing& ring);
  void AddEvents(const std::vector<TraceEvent>& events);

  // All journeys, ordered by first-event time (ties by trace id).
  std::vector<PacketJourney> Journeys() const;
  std::optional<PacketJourney> JourneyOf(uint64_t trace_id) const;

  // Journeys with no kDelivered event: every sampled packet that vanished.
  // A journey both dropped and undelivered appears here with its drop reason;
  // one with neither event ended on a crashed node or an overwritten ring.
  std::vector<PacketJourney> LostJourneys() const;

  // Human-readable dump of the given journeys (all of them by default).
  std::string Text() const;
  static std::string Text(const std::vector<PacketJourney>& journeys);

  // Chrome trace-event JSON ({"traceEvents": [...]}): one process per
  // journey, one thread per resolver, instant events per hop PLUS one
  // complete ("ph":"X") span per classified stage, so the timeline shows
  // where each packet's latency went. Loadable in chrome://tracing or
  // Perfetto as-is.
  std::string ChromeTraceJson() const;

  // End-to-end delivery time (µs) of every delivered journey.
  Histogram DeliveryHistogram() const;

  // Per-stage latency attribution aggregated over journeys (delivered ones
  // by default: only they have a meaningful end-to-end latency to reconcile
  // the stage sum against).
  StageAttribution Attribution(bool delivered_only = true) const;

  size_t event_count() const { return event_count_; }
  void Clear();

 private:
  std::map<uint64_t, std::vector<TraceEvent>> by_trace_;
  size_t event_count_ = 0;
};

}  // namespace ins

#endif  // INS_HARNESS_TRACE_COLLECTOR_H_
