// SimCluster: a complete INS deployment inside the discrete-event simulator.
//
// One call sets up the event loop, the network, a DSR node, any number of
// resolvers and raw test endpoints. Tests, benchmarks, and simulated examples
// all build on this harness; it keeps experiment code at the level of the
// paper's descriptions ("a chain of n INRs", "two resolvers, two virtual
// spaces") rather than socket plumbing.

#ifndef INS_HARNESS_CLUSTER_H_
#define INS_HARNESS_CLUSTER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ins/harness/trace_collector.h"
#include "ins/inr/inr.h"
#include "ins/overlay/dsr.h"
#include "ins/sim/event_loop.h"
#include "ins/sim/fault_injector.h"
#include "ins/sim/network.h"

namespace ins {

struct ClusterOptions {
  uint64_t seed = 1;
  sim::LinkParams default_link{Milliseconds(1), 0, 0};
  // Base template for every resolver; per-INR fields (vspaces) are overridden
  // at AddInr time. The dsr address is filled in by the cluster.
  InrConfig inr_template;
};

class SimCluster {
 public:
  // Host index of the DSR node (address 10.0.0.250); tests that partition
  // the cluster use this to say which side keeps the DSR.
  static constexpr uint32_t kDsrHostIndex = 250;

  explicit SimCluster(ClusterOptions options = {});
  ~SimCluster();

  sim::EventLoop& loop() { return loop_; }
  sim::Network& net() { return net_; }
  sim::FaultInjector& faults() { return faults_; }
  NodeAddress dsr_address() const { return dsr_address_; }
  Dsr& dsr() { return *dsr_; }

  // Creates, starts, and returns a resolver on host 10.0.0.<host_index>.
  Inr* AddInr(uint32_t host_index, std::vector<std::string> vspaces = {""});
  Inr* AddInrWithConfig(uint32_t host_index, InrConfig config);
  // Stops (gracefully) and destroys a resolver mid-run.
  void RemoveInr(Inr* inr);
  // Kills a resolver silently (failure injection): no PeerClose, no DSR
  // unregister — peers must notice via keepalives and soft state.
  void CrashInr(Inr* inr);
  // Brings a crashed resolver back on its original host with its original
  // config but EMPTY runtime state (the INR counterpart of RestartDsr). The
  // restarted node rejoins the overlay through the normal backoff path,
  // re-acquires its virtual-space assignments from the DSR's still-live
  // soft-state registration, and refills its name tree from neighbors' full
  // updates plus services' next refresh. Returns nullptr if no resolver
  // crashed on that host.
  Inr* RestartInr(uint32_t host_index);

  std::vector<Inr*> inrs();

  // Running resolvers that route `vspace` — a replica set's current live
  // members, from the resolvers' own point of view (not the DSR's).
  std::vector<Inr*> ReplicasOf(const std::string& vspace);

  // A raw protocol endpoint: records every envelope it receives.
  class Endpoint {
   public:
    Endpoint(SimCluster* cluster, std::unique_ptr<sim::Network::Socket> socket);

    NodeAddress address() const { return socket_->local_address(); }
    void Send(const NodeAddress& dst, const Envelope& env) {
      socket_->Send(dst, EncodeMessage(env));
    }
    sim::Network::Socket& socket() { return *socket_; }

    std::vector<Envelope>& received() { return received_; }
    // Received bodies of one message type, in arrival order.
    template <typename T>
    std::vector<T> ReceivedOf() const {
      std::vector<T> out;
      for (const Envelope& e : received_) {
        if (const T* body = std::get_if<T>(&e.body)) {
          out.push_back(*body);
        }
      }
      return out;
    }
    void ClearReceived() { received_.clear(); }

   private:
    std::unique_ptr<sim::Network::Socket> socket_;
    std::vector<Envelope> received_;
  };

  // Binds a raw endpoint on host 10.0.<hi>.<lo>; ports default to kInsPort.
  std::unique_ptr<Endpoint> AddEndpoint(uint32_t host_index, uint16_t port = kInsPort);

  // Runs the loop until the overlay settles: every resolver joined and the
  // spanning tree has exactly (n-1) links. Asserts progress within `budget`.
  void StabilizeTopology(Duration budget = Seconds(30));

  // --- Fault injection ------------------------------------------------------

  // Partitions the cluster into mutually unreachable groups of host indexes
  // (hosts not listed anywhere become isolated — include kDsrHostIndex in
  // the side that should keep DSR reachability).
  void Partition(const std::vector<std::vector<uint32_t>>& host_index_groups);
  void Heal() { faults_.Heal(); }

  // Kills the DSR silently; in-flight and future datagrams to it vanish.
  void CrashDsr();
  // Brings a fresh DSR up on the same address with EMPTY state — resolvers
  // must re-register (soft state) before the overlay can grow again.
  void RestartDsr();
  bool dsr_running() const { return dsr_ != nullptr; }

  // Schedules a whole fault script: traffic events go to the FaultInjector,
  // DSR crash/restart events are executed by the cluster at their times.
  void ApplyFaultPlan(const sim::FaultPlan& plan);

  // --- Invariants and reconvergence ----------------------------------------

  // Checks that the overlay of running resolvers is a spanning tree: all
  // joined, neighbor views symmetric, exactly n-1 links, connected. Returns
  // an empty string when the invariant holds, else a human-readable defect.
  std::string CheckTreeInvariant();

  // Runs until CheckTreeInvariant() passes (checked every 200 ms of virtual
  // time); returns how long it took, or nullopt if `budget` elapsed first.
  // Each success is recorded in metrics() under "cluster.reconverge".
  std::optional<Duration> MeasureReconvergence(Duration budget = Seconds(120));

  // Replica convergence: for every vspace, every running resolver that routes
  // it must hold the same announcer -> (name, endpoint) map. Route metrics,
  // expiries, and versions legitimately differ per resolver — a refresh bumps
  // the version with identical content and is not journaled. Empty string
  // when converged, else a human-readable description of the divergence.
  std::string CheckReplicationConvergence();

  // Runs until CheckReplicationConvergence() AND CheckTreeInvariant() pass
  // (every 200 ms); returns elapsed time, or nullopt if `budget` ran out.
  // Successes are recorded under "cluster.replica_converge".
  std::optional<Duration> MeasureReplicationConvergence(Duration budget = Seconds(120));

  const MetricsRegistry& metrics() const { return metrics_; }

  // --- Tracing --------------------------------------------------------------

  // Merges every resolver's trace ring (including rings harvested from
  // resolvers that crashed or were removed) into one collector. Collect once
  // per run boundary: the rings are not drained, so collecting twice doubles
  // events.
  TraceCollector CollectTraces();

  // Merges every resolver's flight recorder (live and harvested) into one
  // causally-ordered incident timeline.
  std::vector<FlightEvent> CollectFlightEvents();

  // Failure forensics: renders the journeys of all sampled-but-undelivered
  // packets plus the merged flight-recorder incident timeline. When the
  // INS_TRACE_DUMP_DIR environment variable is set, also writes
  // <label>.journeys.txt, <label>.trace.json, and <label>.incident.txt there
  // (the CI uploads them as artifacts). Returns the number of lost journeys.
  size_t DumpLostJourneys(const std::string& label);

  // Advances virtual time far enough for in-flight message exchanges to
  // complete (links are ~1 ms). Resolver timers reschedule themselves, so
  // "run until idle" never terminates on a live cluster — bounded settling
  // is the correct primitive.
  void Settle(Duration d = Milliseconds(300)) { loop_.RunFor(d); }

  const ClusterOptions& options() const { return options_; }

 private:
  // Heap-allocated so container reshuffles never destroy a handle's socket
  // before its resolver (Inr::Stop sends a last unregister datagram).
  struct InrHandle {
    uint32_t host_index = 0;
    InrConfig config;  // as-created copy; RestartInr rebuilds from this
    std::unique_ptr<sim::Network::Socket> socket;
    std::unique_ptr<Inr> inr;  // declared after socket: destroyed first
  };

  ClusterOptions options_;
  sim::EventLoop loop_;
  sim::Network net_;
  sim::FaultInjector faults_;
  NodeAddress dsr_address_;
  std::unique_ptr<sim::Network::Socket> dsr_transport_;
  std::unique_ptr<Dsr> dsr_;
  std::vector<std::unique_ptr<InrHandle>> handles_;
  // Config of every crashed resolver, keyed by host index, so RestartInr can
  // bring the same node back.
  std::map<uint32_t, InrConfig> crash_sites_;
  // Trace events of resolvers that left the cluster (crash or removal): a
  // lost packet's last hop is often exactly the node that died.
  std::vector<TraceEvent> retired_trace_events_;
  // Flight-recorder events of departed resolvers — the incident timeline
  // must include what the dead node saw before it died.
  std::vector<FlightEvent> retired_flight_events_;
  MetricsRegistry metrics_;
};

}  // namespace ins

#endif  // INS_HARNESS_CLUSTER_H_
