#include "ins/harness/cluster.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "ins/common/logging.h"

namespace ins {

SimCluster::SimCluster(ClusterOptions options)
    : options_(std::move(options)),
      net_(&loop_, options_.seed),
      faults_(&net_, options_.seed) {
  net_.SetDefaultLink(options_.default_link);
  // Log lines from everything this cluster runs carry virtual-time stamps.
  SetThreadLogClock(&loop_);
  dsr_address_ = MakeAddress(kDsrHostIndex);
  dsr_transport_ = net_.Bind(dsr_address_);
  dsr_ = std::make_unique<Dsr>(&loop_, dsr_transport_.get());
}

SimCluster::~SimCluster() {
  // Destruction order: resolvers (and their sockets) before the network.
  handles_.clear();
  dsr_.reset();
  dsr_transport_.reset();
  SetThreadLogClock(nullptr);
}

Inr* SimCluster::AddInr(uint32_t host_index, std::vector<std::string> vspaces) {
  InrConfig config = options_.inr_template;
  config.vspaces = std::move(vspaces);
  return AddInrWithConfig(host_index, std::move(config));
}

Inr* SimCluster::AddInrWithConfig(uint32_t host_index, InrConfig config) {
  config.dsr = dsr_address();
  config.topology.dsr = dsr_address();
  auto handle = std::make_unique<InrHandle>();
  handle->host_index = host_index;
  handle->config = config;
  handle->socket = net_.Bind(MakeAddress(host_index));
  handle->inr = std::make_unique<Inr>(&loop_, handle->socket.get(), std::move(config));
  Inr* raw = handle->inr.get();
  handles_.push_back(std::move(handle));
  raw->Start();
  return raw;
}

void SimCluster::RemoveInr(Inr* inr) {
  auto it = std::find_if(handles_.begin(), handles_.end(),
                         [inr](const std::unique_ptr<InrHandle>& h) { return h->inr.get() == inr; });
  assert(it != handles_.end());
  // Harvest the rings before the node is destroyed: the last hop of a lost
  // packet is often exactly the resolver that just died, and its flight
  // recorder holds what it saw on the way down.
  for (const TraceEvent& ev : inr->trace_ring().Events()) {
    retired_trace_events_.push_back(ev);
  }
  for (const FlightEvent& ev : inr->flight_recorder().Events()) {
    retired_flight_events_.push_back(ev);
  }
  handles_.erase(it);
}

void SimCluster::CrashInr(Inr* inr) {
  auto it = std::find_if(handles_.begin(), handles_.end(),
                         [inr](const std::unique_ptr<InrHandle>& h) { return h->inr.get() == inr; });
  assert(it != handles_.end());
  crash_sites_[(*it)->host_index] = (*it)->config;
  inr->Crash();
  RemoveInr(inr);  // Stop() is a no-op on a crashed resolver
}

Inr* SimCluster::RestartInr(uint32_t host_index) {
  auto it = crash_sites_.find(host_index);
  if (it == crash_sites_.end()) {
    return nullptr;
  }
  InrConfig config = std::move(it->second);
  crash_sites_.erase(it);
  // Fresh process on the old address: empty name tree, empty overlay state.
  // Start() recovers the vspace assignments from the DSR and rejoins the
  // overlay; neighbors then push full name state (on_neighbor_up).
  return AddInrWithConfig(host_index, std::move(config));
}

std::vector<Inr*> SimCluster::inrs() {
  std::vector<Inr*> out;
  out.reserve(handles_.size());
  for (const std::unique_ptr<InrHandle>& h : handles_) {
    out.push_back(h->inr.get());
  }
  return out;
}

std::vector<Inr*> SimCluster::ReplicasOf(const std::string& vspace) {
  std::vector<Inr*> out;
  for (const std::unique_ptr<InrHandle>& h : handles_) {
    if (h->inr->running() && h->inr->vspaces().Routes(vspace)) {
      out.push_back(h->inr.get());
    }
  }
  return out;
}

SimCluster::Endpoint::Endpoint(SimCluster* cluster,
                               std::unique_ptr<sim::Network::Socket> socket)
    : socket_(std::move(socket)) {
  (void)cluster;
  socket_->SetReceiveHandler([this](const NodeAddress& src, const Bytes& data) {
    (void)src;
    auto env = DecodeMessage(data);
    if (env.ok()) {
      received_.push_back(std::move(*env));
    }
  });
}

std::unique_ptr<SimCluster::Endpoint> SimCluster::AddEndpoint(uint32_t host_index,
                                                              uint16_t port) {
  return std::make_unique<Endpoint>(this, net_.Bind(MakeAddress(host_index, port)));
}

void SimCluster::Partition(const std::vector<std::vector<uint32_t>>& host_index_groups) {
  std::vector<std::vector<uint32_t>> ip_groups;
  ip_groups.reserve(host_index_groups.size());
  for (const std::vector<uint32_t>& group : host_index_groups) {
    std::vector<uint32_t> ips;
    ips.reserve(group.size());
    for (uint32_t host_index : group) {
      ips.push_back(MakeAddress(host_index).ip);
    }
    ip_groups.push_back(std::move(ips));
  }
  faults_.Partition(std::move(ip_groups));
}

void SimCluster::CrashDsr() {
  // Silent death: the socket disappears, so traffic to the DSR is dropped as
  // "nobody home". Resolvers only notice through missing list responses.
  dsr_.reset();
  dsr_transport_.reset();
}

void SimCluster::RestartDsr() {
  if (dsr_ != nullptr) {
    return;
  }
  // Same address, empty state: join orders restart but stay monotonic from
  // the resolvers' point of view only after they re-register.
  dsr_transport_ = net_.Bind(dsr_address_);
  dsr_ = std::make_unique<Dsr>(&loop_, dsr_transport_.get());
}

void SimCluster::ApplyFaultPlan(const sim::FaultPlan& plan) {
  faults_.Schedule(plan);
  for (const sim::FaultEvent& ev : plan.events) {
    if (ev.kind == sim::FaultEvent::Kind::kCrashDsr) {
      loop_.ScheduleAt(ev.at, [this] { CrashDsr(); });
    } else if (ev.kind == sim::FaultEvent::Kind::kRestartDsr) {
      loop_.ScheduleAt(ev.at, [this] { RestartDsr(); });
    }
  }
}

std::string SimCluster::CheckTreeInvariant() {
  // Collect running resolvers and their addresses.
  std::map<NodeAddress, Inr*> by_address;
  for (const std::unique_ptr<InrHandle>& h : handles_) {
    if (h->inr->running()) {
      by_address[h->inr->address()] = h->inr.get();
    }
  }
  if (by_address.empty()) {
    return "";
  }

  std::ostringstream problems;
  size_t links = 0;
  std::map<NodeAddress, NodeAddress> parent_of;  // union-find over addresses
  for (const auto& [addr, inr] : by_address) {
    parent_of[addr] = addr;
  }
  std::function<NodeAddress(NodeAddress)> find = [&](NodeAddress a) {
    while (parent_of[a] != a) {
      parent_of[a] = parent_of[parent_of[a]];
      a = parent_of[a];
    }
    return a;
  };

  for (const auto& [addr, inr] : by_address) {
    if (!inr->topology().joined()) {
      problems << addr.ToString() << " not joined; ";
    }
    for (const NodeAddress& peer : inr->topology().NeighborAddresses()) {
      ++links;
      auto it = by_address.find(peer);
      if (it == by_address.end()) {
        problems << addr.ToString() << " links dead peer " << peer.ToString() << "; ";
        continue;
      }
      if (!it->second->topology().IsNeighbor(addr)) {
        problems << "asymmetric link " << addr.ToString() << "->" << peer.ToString() << "; ";
        continue;
      }
      parent_of[find(addr)] = find(peer);
    }
  }

  size_t n = by_address.size();
  if (links != 2 * (n - 1)) {
    problems << "expected " << 2 * (n - 1) << " directed links, have " << links << "; ";
  }
  size_t components = 0;
  for (const auto& [addr, inr] : by_address) {
    if (find(addr) == addr) {
      ++components;
    }
  }
  if (components != 1) {
    problems << components << " components; ";
  }
  // n nodes, connected, n-1 symmetric links => acyclic: a spanning tree.
  return problems.str();
}

TraceCollector SimCluster::CollectTraces() {
  TraceCollector collector;
  for (const std::unique_ptr<InrHandle>& h : handles_) {
    collector.Add(h->inr->trace_ring());
  }
  collector.AddEvents(retired_trace_events_);
  return collector;
}

std::vector<FlightEvent> SimCluster::CollectFlightEvents() {
  std::vector<FlightEvent> events = retired_flight_events_;
  for (const std::unique_ptr<InrHandle>& h : handles_) {
    for (const FlightEvent& ev : h->inr->flight_recorder().Events()) {
      events.push_back(ev);
    }
  }
  return MergeFlightEvents(std::move(events));
}

size_t SimCluster::DumpLostJourneys(const std::string& label) {
  TraceCollector collector = CollectTraces();
  const std::vector<PacketJourney> lost = collector.LostJourneys();
  if (!lost.empty()) {
    INS_LOG(kWarning) << label << ": " << lost.size() << " sampled packet(s) lost:\n"
                      << TraceCollector::Text(lost);
  }
  // The flight timeline is dumped even when no sampled packet was lost: a
  // reconvergence stall drops nothing but the incident record is still the
  // primary diagnostic.
  const char* dir = std::getenv("INS_TRACE_DUMP_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    const std::string base = std::string(dir) + "/" + label;
    if (!lost.empty()) {
      std::ofstream text(base + ".journeys.txt");
      text << TraceCollector::Text(lost);
      std::ofstream json(base + ".trace.json");
      json << collector.ChromeTraceJson();
    }
    std::ofstream timeline(base + ".incident.txt");
    timeline << FlightTimelineText(CollectFlightEvents());
    INS_LOG(kWarning) << label << ": forensics dumped to " << base
                      << ".incident.txt";
  }
  return lost.size();
}

std::string SimCluster::CheckReplicationConvergence() {
  // vspace -> (resolver, announcer -> replicated content) of every running
  // resolver routing that space. The signature covers what replication
  // promises to converge: the name and the announcer's endpoint. Versions are
  // deliberately NOT compared — a service refresh bumps the version with
  // identical content, which is a soft-state refresh (not journaled), so
  // remote versions may lag the origin between transfers by design.
  std::map<std::string, std::vector<std::pair<NodeAddress, std::map<AnnouncerId, std::string>>>>
      views;
  for (const std::unique_ptr<InrHandle>& h : handles_) {
    if (!h->inr->running()) {
      continue;
    }
    for (const std::string& vspace : h->inr->vspaces().RoutedSpaces()) {
      std::map<AnnouncerId, std::string> view;
      h->inr->vspaces().store().ForEachShardTree(vspace, [&](const NameTree& tree) {
        for (const NameRecord* rec : tree.AllRecords()) {
          view[rec->announcer] =
              tree.ExtractName(rec).ToString() + " @" + rec->endpoint.address.ToString();
        }
      });
      views[vspace].emplace_back(h->inr->address(), std::move(view));
    }
  }
  std::ostringstream problems;
  for (const auto& [vspace, resolvers] : views) {
    for (size_t i = 1; i < resolvers.size(); ++i) {
      if (resolvers[i].second == resolvers[0].second) {
        continue;
      }
      problems << "vspace '" << vspace << "': " << resolvers[0].first.ToString() << " has "
               << resolvers[0].second.size() << " records, " << resolvers[i].first.ToString()
               << " has " << resolvers[i].second.size();
      for (const auto& [id, sig] : resolvers[0].second) {
        auto it = resolvers[i].second.find(id);
        if (it == resolvers[i].second.end()) {
          problems << "; " << id.ToString() << " missing at " << resolvers[i].first.ToString();
        } else if (it->second != sig) {
          problems << "; " << id.ToString() << " '" << sig << "' vs '" << it->second << "'";
        }
      }
      for (const auto& [id, sig] : resolvers[i].second) {
        if (resolvers[0].second.count(id) == 0) {
          problems << "; " << id.ToString() << " extra at " << resolvers[i].first.ToString();
        }
      }
      problems << ". ";
    }
  }
  return problems.str();
}

std::optional<Duration> SimCluster::MeasureReplicationConvergence(Duration budget) {
  TimePoint start = loop_.Now();
  TimePoint deadline = start + budget;
  while (loop_.Now() < deadline) {
    loop_.RunFor(Milliseconds(200));
    if (CheckTreeInvariant().empty() && CheckReplicationConvergence().empty()) {
      Duration elapsed = loop_.Now() - start;
      metrics_.RecordDuration("cluster.replica_converge", elapsed);
      return elapsed;
    }
  }
  return std::nullopt;
}

std::optional<Duration> SimCluster::MeasureReconvergence(Duration budget) {
  TimePoint start = loop_.Now();
  TimePoint deadline = start + budget;
  while (loop_.Now() < deadline) {
    loop_.RunFor(Milliseconds(200));
    if (CheckTreeInvariant().empty()) {
      Duration elapsed = loop_.Now() - start;
      metrics_.RecordDuration("cluster.reconverge", elapsed);
      return elapsed;
    }
  }
  return std::nullopt;
}

void SimCluster::StabilizeTopology(Duration budget) {
  TimePoint deadline = loop_.Now() + budget;
  while (loop_.Now() < deadline) {
    loop_.RunFor(Milliseconds(200));
    size_t running = 0;
    size_t joined = 0;
    size_t links = 0;
    for (const std::unique_ptr<InrHandle>& h : handles_) {
      if (!h->inr->running()) {
        continue;
      }
      ++running;
      if (h->inr->topology().joined()) {
        ++joined;
      }
      links += h->inr->topology().NeighborAddresses().size();
    }
    if (running > 0 && joined == running && links == 2 * (running - 1)) {
      return;
    }
  }
  assert(false && "overlay failed to stabilize within budget");
}

}  // namespace ins
