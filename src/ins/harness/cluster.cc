#include "ins/harness/cluster.h"

#include <algorithm>
#include <cassert>

namespace ins {

namespace {
// The DSR lives on host 10.0.0.250.
constexpr uint32_t kDsrHost = 250;
}  // namespace

SimCluster::SimCluster(ClusterOptions options)
    : options_(std::move(options)), net_(&loop_, options_.seed) {
  net_.SetDefaultLink(options_.default_link);
  dsr_transport_ = net_.Bind(MakeAddress(kDsrHost));
  dsr_ = std::make_unique<Dsr>(&loop_, dsr_transport_.get());
}

SimCluster::~SimCluster() {
  // Destruction order: resolvers (and their sockets) before the network.
  handles_.clear();
  dsr_.reset();
  dsr_transport_.reset();
}

Inr* SimCluster::AddInr(uint32_t host_index, std::vector<std::string> vspaces) {
  InrConfig config = options_.inr_template;
  config.vspaces = std::move(vspaces);
  return AddInrWithConfig(host_index, std::move(config));
}

Inr* SimCluster::AddInrWithConfig(uint32_t host_index, InrConfig config) {
  config.dsr = dsr_address();
  config.topology.dsr = dsr_address();
  auto handle = std::make_unique<InrHandle>();
  handle->socket = net_.Bind(MakeAddress(host_index));
  handle->inr = std::make_unique<Inr>(&loop_, handle->socket.get(), std::move(config));
  Inr* raw = handle->inr.get();
  handles_.push_back(std::move(handle));
  raw->Start();
  return raw;
}

void SimCluster::RemoveInr(Inr* inr) {
  auto it = std::find_if(handles_.begin(), handles_.end(),
                         [inr](const std::unique_ptr<InrHandle>& h) { return h->inr.get() == inr; });
  assert(it != handles_.end());
  handles_.erase(it);
}

void SimCluster::CrashInr(Inr* inr) {
  inr->Crash();
  RemoveInr(inr);  // Stop() is a no-op on a crashed resolver
}

std::vector<Inr*> SimCluster::inrs() {
  std::vector<Inr*> out;
  out.reserve(handles_.size());
  for (const std::unique_ptr<InrHandle>& h : handles_) {
    out.push_back(h->inr.get());
  }
  return out;
}

SimCluster::Endpoint::Endpoint(SimCluster* cluster,
                               std::unique_ptr<sim::Network::Socket> socket)
    : socket_(std::move(socket)) {
  (void)cluster;
  socket_->SetReceiveHandler([this](const NodeAddress& src, const Bytes& data) {
    (void)src;
    auto env = DecodeMessage(data);
    if (env.ok()) {
      received_.push_back(std::move(*env));
    }
  });
}

std::unique_ptr<SimCluster::Endpoint> SimCluster::AddEndpoint(uint32_t host_index,
                                                              uint16_t port) {
  return std::make_unique<Endpoint>(this, net_.Bind(MakeAddress(host_index, port)));
}

void SimCluster::StabilizeTopology(Duration budget) {
  TimePoint deadline = loop_.Now() + budget;
  while (loop_.Now() < deadline) {
    loop_.RunFor(Milliseconds(200));
    size_t running = 0;
    size_t joined = 0;
    size_t links = 0;
    for (const std::unique_ptr<InrHandle>& h : handles_) {
      if (!h->inr->running()) {
        continue;
      }
      ++running;
      if (h->inr->topology().joined()) {
        ++joined;
      }
      links += h->inr->topology().NeighborAddresses().size();
    }
    if (running > 0 && joined == running && links == 2 * (running - 1)) {
      return;
    }
  }
  assert(false && "overlay failed to stabilize within budget");
}

}  // namespace ins
