#include "ins/harness/trace_collector.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace ins {

namespace {

// Seconds with microsecond precision, e.g. "12.345678s".
std::string FormatTime(TimePoint at) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%06" PRId64 "s", at.count() / 1000000,
                at.count() % 1000000);
  return buf;
}

std::string FormatTraceId(uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, id);
  return buf;
}

void SortCausally(std::vector<TraceEvent>& events) {
  // Simulated time is a single global clock, so time order IS causal order;
  // stable sort keeps each node's recording order for same-instant events.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.at < b.at; });
}

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
}

}  // namespace

bool PacketJourney::delivered() const {
  return std::any_of(events.begin(), events.end(), [](const TraceEvent& e) {
    return e.kind == TraceEventKind::kDelivered;
  });
}

bool PacketJourney::dropped() const {
  return std::any_of(events.begin(), events.end(), [](const TraceEvent& e) {
    return e.kind == TraceEventKind::kDropped;
  });
}

const char* PacketJourney::drop_reason() const {
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kDropped) {
      return e.detail;
    }
  }
  return "";
}

Duration PacketJourney::Elapsed() const {
  if (events.empty()) {
    return Duration{0};
  }
  return events.back().at - events.front().at;
}

std::vector<PacketJourney::StageSpan> PacketJourney::StageSpans() const {
  std::vector<StageSpan> spans;
  for (size_t i = 1; i < events.size(); ++i) {
    const auto stage = StageForTransition(events[i - 1].kind, events[i].kind);
    if (!stage.has_value()) {
      continue;
    }
    StageSpan span;
    span.stage = *stage;
    span.begin = events[i - 1].at;
    span.end = events[i].at;
    span.node = events[i].node;
    spans.push_back(span);
  }
  return spans;
}

std::string PacketJourney::ToString() const {
  std::ostringstream os;
  os << "trace " << FormatTraceId(trace_id);
  if (delivered()) {
    os << " (delivered, " << Elapsed().count() << " us)";
  } else if (dropped()) {
    os << " (DROPPED: " << drop_reason() << ")";
  } else {
    os << " (LOST: no delivery, no drop event)";
  }
  os << "\n";
  for (const TraceEvent& e : events) {
    os << "  [" << FormatTime(e.at) << "] " << e.node.ToString() << " "
       << TraceEventKindName(e.kind);
    if (e.detail != nullptr && e.detail[0] != '\0') {
      os << " " << e.detail;
    }
    if (e.peer.IsValid()) {
      os << " peer=" << e.peer.ToString();
    }
    switch (e.kind) {
      case TraceEventKind::kReceived:
      case TraceEventKind::kNextHopChosen:
        os << " hop_limit=" << e.value;
        break;
      case TraceEventKind::kQueued:
        os << " depth=" << e.value;
        break;
      case TraceEventKind::kAdmitted:
        os << " queued_us=" << e.value;
        break;
      case TraceEventKind::kLookup:
        os << " matches=" << e.value;
        break;
      default:
        break;
    }
    os << "\n";
  }
  return os.str();
}

void TraceCollector::Add(const TraceRing& ring) { AddEvents(ring.Events()); }

void TraceCollector::AddEvents(const std::vector<TraceEvent>& events) {
  for (const TraceEvent& e : events) {
    by_trace_[e.trace_id].push_back(e);
    ++event_count_;
  }
}

std::vector<PacketJourney> TraceCollector::Journeys() const {
  std::vector<PacketJourney> out;
  out.reserve(by_trace_.size());
  for (const auto& [id, events] : by_trace_) {
    PacketJourney j;
    j.trace_id = id;
    j.events = events;
    SortCausally(j.events);
    out.push_back(std::move(j));
  }
  std::stable_sort(out.begin(), out.end(), [](const PacketJourney& a, const PacketJourney& b) {
    const TimePoint ta = a.events.empty() ? TimePoint{0} : a.events.front().at;
    const TimePoint tb = b.events.empty() ? TimePoint{0} : b.events.front().at;
    if (ta != tb) {
      return ta < tb;
    }
    return a.trace_id < b.trace_id;
  });
  return out;
}

std::optional<PacketJourney> TraceCollector::JourneyOf(uint64_t trace_id) const {
  auto it = by_trace_.find(trace_id);
  if (it == by_trace_.end()) {
    return std::nullopt;
  }
  PacketJourney j;
  j.trace_id = trace_id;
  j.events = it->second;
  SortCausally(j.events);
  return j;
}

std::vector<PacketJourney> TraceCollector::LostJourneys() const {
  std::vector<PacketJourney> out;
  for (PacketJourney& j : Journeys()) {
    if (!j.delivered()) {
      out.push_back(std::move(j));
    }
  }
  return out;
}

std::string TraceCollector::Text() const { return Text(Journeys()); }

std::string TraceCollector::Text(const std::vector<PacketJourney>& journeys) {
  std::string out;
  for (const PacketJourney& j : journeys) {
    out += j.ToString();
  }
  return out;
}

std::string TraceCollector::ChromeTraceJson() const {
  // One "process" per journey and one "thread" per resolver within it, so the
  // timeline shows each packet as a lane and its hops as rows.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  int pid = 0;
  for (const PacketJourney& j : Journeys()) {
    ++pid;
    auto emit = [&](const std::string& line) {
      if (!first) {
        out += ",";
      }
      first = false;
      out += "\n";
      out += line;
    };
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"args\":{\"name\":\"trace " + FormatTraceId(j.trace_id) + "\"}}");
    std::map<std::string, int> tids;
    for (const TraceEvent& e : j.events) {
      const std::string node = e.node.ToString();
      auto [it, inserted] = tids.emplace(node, static_cast<int>(tids.size()) + 1);
      if (inserted) {
        std::string meta = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
                           std::to_string(pid) + ",\"tid\":" + std::to_string(it->second) +
                           ",\"args\":{\"name\":\"";
        AppendJsonEscaped(meta, node);
        meta += "\"}}";
        emit(meta);
      }
      std::string line = "{\"name\":\"";
      AppendJsonEscaped(line, TraceEventKindName(e.kind));
      line += "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" + std::to_string(pid) +
              ",\"tid\":" + std::to_string(it->second) +
              ",\"ts\":" + std::to_string(e.at.count()) + ",\"args\":{\"detail\":\"";
      AppendJsonEscaped(line, e.detail == nullptr ? "" : e.detail);
      line += "\",\"value\":" + std::to_string(e.value);
      if (e.peer.IsValid()) {
        line += ",\"peer\":\"";
        AppendJsonEscaped(line, e.peer.ToString());
        line += "\"";
      }
      line += "}}";
      emit(line);
    }
    // Stage spans as complete events: the instants above mark the hops, these
    // show where the time went. Each span renders on the thread of the node
    // it ended on (already registered above: the end event carries the node).
    for (const PacketJourney::StageSpan& span : j.StageSpans()) {
      auto it = tids.find(span.node.ToString());
      if (it == tids.end()) {
        continue;
      }
      std::string line = "{\"name\":\"stage:";
      AppendJsonEscaped(line, LatencyStageName(span.stage));
      line += "\",\"ph\":\"X\",\"pid\":" + std::to_string(pid) +
              ",\"tid\":" + std::to_string(it->second) +
              ",\"ts\":" + std::to_string(span.begin.count()) +
              ",\"dur\":" + std::to_string(span.span().count()) + "}";
      emit(line);
    }
  }
  out += "\n]}\n";
  return out;
}

double StageAttribution::CoverageFraction() const {
  if (elapsed_total_us == 0) {
    return journeys > 0 ? 1.0 : 0.0;
  }
  return static_cast<double>(attributed_total_us) / static_cast<double>(elapsed_total_us);
}

std::string StageAttribution::Table() const {
  std::ostringstream os;
  os << "stage attribution over " << journeys << " journey(s): " << attributed_total_us
     << " of " << elapsed_total_us << " us attributed\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %-16s %8s %12s %7s %10s %10s\n", "stage", "spans",
                "total_us", "share", "p50_us", "p99_us");
  os << line;
  for (size_t s = 0; s < kLatencyStageCount; ++s) {
    const Histogram& h = stage_us[s];
    const double share = elapsed_total_us == 0
                             ? 0.0
                             : static_cast<double>(h.sum()) / static_cast<double>(elapsed_total_us);
    std::snprintf(line, sizeof(line),
                  "  %-16s %8" PRIu64 " %12" PRIu64 " %6.1f%% %10.0f %10.0f\n",
                  std::string(LatencyStageName(static_cast<LatencyStage>(s))).c_str(),
                  h.count(), h.sum(), share * 100.0, h.P50(), h.P99());
    os << line;
  }
  return os.str();
}

StageAttribution TraceCollector::Attribution(bool delivered_only) const {
  StageAttribution attr;
  for (const PacketJourney& j : Journeys()) {
    if (delivered_only && !j.delivered()) {
      continue;
    }
    ++attr.journeys;
    attr.elapsed_total_us += static_cast<uint64_t>(std::max<int64_t>(j.Elapsed().count(), 0));
    for (const PacketJourney::StageSpan& span : j.StageSpans()) {
      const uint64_t us = static_cast<uint64_t>(std::max<int64_t>(span.span().count(), 0));
      attr.stage_us[static_cast<size_t>(span.stage)].Record(us);
      attr.attributed_total_us += us;
    }
  }
  return attr;
}

Histogram TraceCollector::DeliveryHistogram() const {
  Histogram h;
  for (const PacketJourney& j : Journeys()) {
    if (j.delivered()) {
      h.Record(static_cast<uint64_t>(j.Elapsed().count()));
    }
  }
  return h;
}

void TraceCollector::Clear() {
  by_trace_.clear();
  event_count_ = 0;
}

}  // namespace ins
