// NetworkMonitor: the paper's NetworkManagement application (§3.3), headless.
//
// The paper's monitor displays the INR overlay and per-resolver statistics by
// querying the resolvers themselves. This version works the same way and is
// bootstrapped intentionally: resolvers running with NetmonConfig.advertise
// announce [service=netmon][node=<addr>] into the namespace, the monitor
// discovers them with one DiscoveryRequest against that filter, then polls
// each with MetricsRequest and assembles the MetricsResponse snapshots into a
// cluster-wide status report (key counters plus lookup-latency quantiles per
// resolver). Resolver state here is soft like everything else: entries for
// resolvers that stop answering are aged out after `forget_after`.

#ifndef INS_APPS_NETMON_H_
#define INS_APPS_NETMON_H_

#include <map>
#include <string>

#include "ins/common/executor.h"
#include "ins/common/metrics.h"
#include "ins/common/transport.h"
#include "ins/wire/messages.h"

namespace ins {

class NetworkMonitor {
 public:
  struct Options {
    NodeAddress inr;           // resolver the discovery query is sent to
    std::string vspace;        // vspace the netmon names live in ("" default)
    Duration poll_interval = Seconds(5);
    // Drop a resolver from the report when it has not answered for this long
    // (it crashed, or its netmon advertisement expired).
    Duration forget_after = Seconds(30);
  };

  struct ResolverStatus {
    NodeAddress address;
    MetricsSnapshot snapshot;
    TimePoint last_update{0};
  };

  NetworkMonitor(Executor* executor, Transport* transport, Options options);
  ~NetworkMonitor();

  NetworkMonitor(const NetworkMonitor&) = delete;
  NetworkMonitor& operator=(const NetworkMonitor&) = delete;

  // Begins periodic polling (first round immediately).
  void Start();
  void Stop();

  // One poll round: discover resolvers, then request a snapshot from every
  // one discovered (and every one already known). Usable without Start() for
  // single-shot polls.
  void PollOnce();

  // Latest snapshot per resolver, keyed by resolver address.
  const std::map<NodeAddress, ResolverStatus>& resolvers() const { return resolvers_; }

  // The cluster-wide status table: one row per resolver with its key
  // counters (packets, lookups, deliveries, total drops) and lookup-latency
  // p50/p99 — the moral equivalent of the paper's NetworkManagement GUI.
  std::string Report() const;

  uint64_t polls_sent() const { return polls_sent_; }
  uint64_t snapshots_received() const { return snapshots_received_; }

 private:
  void OnMessage(const NodeAddress& src, const Bytes& data);
  void HandleDiscoveryResponse(const DiscoveryResponse& resp);
  void HandleMetricsResponse(const MetricsResponse& resp);
  void RequestSnapshot(const NodeAddress& resolver);
  void ForgetStale();

  Executor* executor_;
  Transport* transport_;
  Options options_;
  bool running_ = false;
  TaskId poll_task_ = kInvalidTaskId;
  uint64_t next_request_id_ = 1;
  uint64_t polls_sent_ = 0;
  uint64_t snapshots_received_ = 0;
  std::map<NodeAddress, ResolverStatus> resolvers_;
};

}  // namespace ins

#endif  // INS_APPS_NETMON_H_
