// NetworkMonitor: the paper's NetworkManagement application (§3.3), headless.
//
// The paper's monitor displays the INR overlay and per-resolver statistics by
// querying the resolvers themselves. This version works the same way and is
// bootstrapped intentionally: resolvers running with NetmonConfig.advertise
// announce [service=netmon][node=<addr>] into the namespace, the monitor
// discovers them with one DiscoveryRequest against that filter, then polls
// each incrementally (MetricsDeltaRequest: only the slots that changed since
// the monitor's last-seen sequence come back; a gap or resolver restart
// falls back to one full snapshot) and maintains a per-resolver time-series
// of the reassembled snapshots. Resolver state here is soft like everything
// else: entries for resolvers that stop answering are aged out after
// `forget_after`.
//
// On top of the time-series the monitor evaluates service-level objectives
// with multi-window burn rates (a short window to catch fast burns, a long
// window to suppress blips; an objective alerts only when BOTH windows burn
// error budget faster than `burn_threshold`).

#ifndef INS_APPS_NETMON_H_
#define INS_APPS_NETMON_H_

#include <map>
#include <string>
#include <vector>

#include "ins/common/executor.h"
#include "ins/common/metrics.h"
#include "ins/common/timeseries.h"
#include "ins/common/transport.h"
#include "ins/wire/messages.h"

namespace ins {

// Latency/goodput objectives evaluated over each resolver's metric
// time-series. A burn rate of 1.0 means errors arrive exactly at the budget;
// above `burn_threshold` in both windows, the objective alerts.
struct SloConfig {
  bool enabled = false;
  // Latency objective: at most `latency_budget` of lookups may take longer
  // than `latency_target_us`.
  uint64_t latency_target_us = 1000;
  double latency_budget = 0.01;
  // Goodput objective: at most `drop_budget` of handled packets dropped
  // (any forwarding.drop.* reason).
  double drop_budget = 0.01;
  Duration short_window = Seconds(30);
  Duration long_window = Seconds(300);
  double burn_threshold = 2.0;
};

// One objective's burn evaluation for one resolver.
struct SloBurn {
  double short_burn = 0.0;
  double long_burn = 0.0;
  bool alerting = false;
};

struct SloAlert {
  NodeAddress resolver;
  std::string objective;  // "latency" or "goodput"
  double short_burn = 0.0;
  double long_burn = 0.0;
};

class NetworkMonitor {
 public:
  struct Options {
    NodeAddress inr;           // resolver the discovery query is sent to
    std::string vspace;        // vspace the netmon names live in ("" default)
    Duration poll_interval = Seconds(5);
    // Drop a resolver from the report when it has not answered for this long
    // (it crashed, or its netmon advertisement expired).
    Duration forget_after = Seconds(30);
    // Incremental polling (MetricsDeltaRequest). Off = the seed behaviour:
    // every poll ships a full MetricsResponse snapshot.
    bool delta_polling = true;
    // Retained samples per resolver (the SLO windows must fit inside).
    size_t timeseries_capacity = 64;
    SloConfig slo;
  };

  struct ResolverStatus {
    NodeAddress address;
    MetricsSnapshot snapshot;
    TimePoint last_update{0};
    // Sequence of the last delta sample applied (0 = next poll fetches a
    // full snapshot). Reset whenever the resolver's answer does not chain
    // onto our baseline — most notably after a resolver restart.
    uint64_t last_seq = 0;
    // Periodic snapshots; the SLO burn windows are evaluated against this.
    MetricsTimeSeries series{64};
  };

  NetworkMonitor(Executor* executor, Transport* transport, Options options);
  ~NetworkMonitor();

  NetworkMonitor(const NetworkMonitor&) = delete;
  NetworkMonitor& operator=(const NetworkMonitor&) = delete;

  // Begins periodic polling (first round immediately).
  void Start();
  void Stop();

  // One poll round: discover resolvers, then request a snapshot from every
  // one discovered (and every one already known). Usable without Start() for
  // single-shot polls.
  void PollOnce();

  // Latest snapshot per resolver, keyed by resolver address.
  const std::map<NodeAddress, ResolverStatus>& resolvers() const { return resolvers_; }

  // The cluster-wide status table: one row per resolver with its key
  // counters (packets, lookups, deliveries, total drops) and lookup-latency
  // p50/p99 — the moral equivalent of the paper's NetworkManagement GUI.
  // With SLOs enabled, burn rates and active alerts are appended.
  std::string Report() const;

  // Objectives currently alerting (both burn windows above threshold).
  // Empty when SLOs are disabled or every resolver is within budget.
  std::vector<SloAlert> ActiveAlerts() const;

  // Burn evaluation for one resolver (tests; Report uses it too).
  SloBurn LatencyBurn(const ResolverStatus& status) const;
  SloBurn GoodputBurn(const ResolverStatus& status) const;

  uint64_t polls_sent() const { return polls_sent_; }
  uint64_t snapshots_received() const { return snapshots_received_; }
  uint64_t deltas_received() const { return deltas_received_; }
  uint64_t fulls_received() const { return fulls_received_; }

 private:
  void OnMessage(const NodeAddress& src, const Bytes& data);
  void HandleDiscoveryResponse(const DiscoveryResponse& resp);
  void HandleMetricsResponse(const MetricsResponse& resp);
  void HandleMetricsDeltaResponse(const MetricsDeltaResponse& resp);
  void RequestSnapshot(const NodeAddress& resolver);
  void ForgetStale();
  // Shared tail of both response paths: stamps the status and appends the
  // reassembled snapshot to the resolver's time-series.
  void CommitSnapshot(ResolverStatus& status);

  Executor* executor_;
  Transport* transport_;
  Options options_;
  bool running_ = false;
  TaskId poll_task_ = kInvalidTaskId;
  uint64_t next_request_id_ = 1;
  uint64_t polls_sent_ = 0;
  uint64_t snapshots_received_ = 0;
  uint64_t deltas_received_ = 0;
  uint64_t fulls_received_ = 0;
  std::map<NodeAddress, ResolverStatus> resolvers_;
};

}  // namespace ins

#endif  // INS_APPS_NETMON_H_
