// Camera: a mobile camera network (paper §3.2).
//
// Transmitters serve images; receivers fetch them. Two interaction modes:
// request–response (a receiver anycasts a request to the transmitter's
// intentional name; the transmitter replies to the receiver's name, using
// the receiver's unique id), and subscription (a transmitter multicasts each
// frame to [service=camera[entity=receiver[id=*]]][room=R], reaching every
// subscriber at once). Both survive node mobility (MobilityManager rebinds
// and re-announces) and service mobility (MoveToRoom renames the camera).
// Frames may carry a cache lifetime so INRs answer repeat requests from the
// §3.2 packet cache.

#ifndef INS_APPS_CAMERA_H_
#define INS_APPS_CAMERA_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "ins/client/api.h"

namespace ins {

class CameraTransmitter {
 public:
  CameraTransmitter(InsClient* client, const std::string& id, const std::string& room);

  // Updates the current frame.
  void SetImage(Bytes image) { image_ = std::move(image); }
  const Bytes& image() const { return image_; }

  // Pushes the current frame to every subscriber in this camera's room. A
  // non-zero cache lifetime lets INRs cache the frame en route.
  void PublishToSubscribers(uint32_t cache_lifetime_s = 0);

  // Service mobility: the camera now observes a different room.
  void MoveToRoom(const std::string& room);

  const NameSpecifier& name() const;
  const std::string& room() const { return room_; }
  uint64_t requests_served() const { return requests_served_; }

 private:
  void OnData(const NameSpecifier& source, const Bytes& payload);
  static NameSpecifier NameFor(const std::string& id, const std::string& room);

  InsClient* client_;
  std::string id_;
  std::string room_;
  std::unique_ptr<AdvertisementHandle> advertisement_;
  Bytes image_;
  uint64_t requests_served_ = 0;
};

class CameraReceiver {
 public:
  CameraReceiver(InsClient* client, const std::string& id);

  // Fetches the current image from (the best) camera in `room`. With
  // `allow_cached`, an INR holding a cached frame answers directly.
  using ImageCallback = std::function<void(Status, Bytes)>;
  void RequestImage(const std::string& room, bool allow_cached, ImageCallback cb,
                    Duration timeout = Seconds(2));

  // Subscribes to frames multicast by cameras in `room` (advertises this
  // receiver's name with that room attribute).
  void Subscribe(const std::string& room);
  void Unsubscribe();

  // Fired for every subscription frame.
  std::function<void(const NameSpecifier& camera, const Bytes& image)> on_frame;

  const NameSpecifier& name() const { return name_; }

 private:
  void OnData(const NameSpecifier& source, const Bytes& payload);

  InsClient* client_;
  std::string id_;
  NameSpecifier name_;
  std::unique_ptr<AdvertisementHandle> advertisement_;
  uint64_t next_request_id_ = 1;
  struct PendingRequest {
    ImageCallback callback;
    TaskId timeout_task;
  };
  std::map<uint64_t, PendingRequest> pending_;
};

}  // namespace ins

#endif  // INS_APPS_CAMERA_H_
