// Floorplan: map-based service discovery (paper §3.1), headless.
//
// Floorplan discovers location-dependent services by sending a discovery
// filter to its resolver and turning the returned name-specifiers into
// "icons" (service type + room). Region maps are not baked in: they are
// retrieved on demand from a Locator service, itself discovered by
// intentional name — the paper's request
// [service=locator[entity=server]][location] pattern. As services announce
// or time out, the icon set follows the resolver's soft state.

#ifndef INS_APPS_FLOORPLAN_H_
#define INS_APPS_FLOORPLAN_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "ins/client/api.h"

namespace ins {

// Serves region maps under [service=locator[entity=server]].
class LocatorService {
 public:
  explicit LocatorService(InsClient* client);

  // Registers the map bytes for a region (e.g. "ne43-5th-floor").
  void AddMap(const std::string& region, Bytes map_data);

  uint64_t requests_served() const { return requests_served_; }

 private:
  void OnData(const NameSpecifier& source, const Bytes& payload);

  InsClient* client_;
  std::unique_ptr<AdvertisementHandle> advertisement_;
  std::map<std::string, Bytes> maps_;
  uint64_t requests_served_ = 0;
};

class FloorplanApp {
 public:
  // One icon per discovered service name.
  struct Icon {
    std::string service;  // e.g. "camera", "printer"
    std::string room;     // "" when the service has no room attribute
    NameSpecifier name;   // the full specifier (used to invoke the service)
    double metric = 0.0;
  };

  // `display_id` distinguishes this display instance's own name.
  FloorplanApp(InsClient* client, const std::string& display_id);

  // Runs one discovery round with the current region filter; on completion
  // the icon set reflects every currently live matching service.
  void Refresh(std::function<void(Status)> done);

  // Restricts discovery, e.g. to one room: [room=510].
  void SetFilter(NameSpecifier filter) { filter_ = std::move(filter); }

  // Icons keyed by canonical name text.
  const std::map<std::string, Icon>& icons() const { return icons_; }

  // Fetches the map for a region from whichever Locator answers.
  using MapCallback = std::function<void(Status, Bytes)>;
  void RequestMap(const std::string& region, MapCallback cb);

 private:
  void OnData(const NameSpecifier& source, const Bytes& payload);

  InsClient* client_;
  NameSpecifier own_name_;
  std::unique_ptr<AdvertisementHandle> advertisement_;
  NameSpecifier filter_;
  std::map<std::string, Icon> icons_;
  uint64_t next_request_id_ = 1;
  std::map<uint64_t, MapCallback> pending_maps_;
};

}  // namespace ins

#endif  // INS_APPS_FLOORPLAN_H_
