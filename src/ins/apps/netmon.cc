#include "ins/apps/netmon.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <vector>

namespace ins {

namespace {

// Sum of every counter in `snapshot` whose name starts with `prefix` — the
// snapshot-side analogue of MetricsRegistry::FamilyTotal.
uint64_t SnapshotFamilyTotal(const MetricsSnapshot& snapshot, const std::string& prefix) {
  uint64_t total = 0;
  for (auto it = snapshot.counters.lower_bound(prefix);
       it != snapshot.counters.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    total += it->second;
  }
  return total;
}

uint64_t SnapshotCounter(const MetricsSnapshot& snapshot, const std::string& name) {
  auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

// Samples recorded above `threshold`, estimated from the log2 buckets: a
// bucket entirely above the threshold counts in full, the straddling bucket
// counts as within-target (conservative — burn is never overstated by more
// than one bucket's width).
uint64_t CountAbove(const Histogram& h, uint64_t threshold) {
  uint64_t above = 0;
  for (const auto& [index, count] : h.SparseBuckets()) {
    if (Histogram::BucketLow(index) > threshold) {
      above += count;
    }
  }
  return above;
}

uint64_t ClampedDelta(uint64_t now, uint64_t then) { return now < then ? 0 : now - then; }

}  // namespace

NetworkMonitor::NetworkMonitor(Executor* executor, Transport* transport, Options options)
    : executor_(executor), transport_(transport), options_(std::move(options)) {
  transport_->SetReceiveHandler(
      [this](const NodeAddress& src, const Bytes& data) { OnMessage(src, data); });
}

NetworkMonitor::~NetworkMonitor() {
  Stop();
  transport_->SetReceiveHandler(nullptr);
}

void NetworkMonitor::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  PollOnce();
}

void NetworkMonitor::Stop() {
  running_ = false;
  if (poll_task_ != kInvalidTaskId) {
    executor_->Cancel(poll_task_);
    poll_task_ = kInvalidTaskId;
  }
}

void NetworkMonitor::PollOnce() {
  ++polls_sent_;
  ForgetStale();
  // Round 1: who is out there? Resolvers self-advertise under
  // [service=netmon]; any one resolver can answer for the whole namespace.
  DiscoveryRequest req;
  req.request_id = next_request_id_++;
  req.vspace = options_.vspace;
  req.filter_text = "[service=netmon]";
  req.reply_to = transport_->local_address();
  transport_->Send(options_.inr, Encode(req));
  // Round 2 for already-known resolvers happens immediately; newly discovered
  // ones are polled when the discovery response arrives.
  for (const auto& [addr, status] : resolvers_) {
    RequestSnapshot(addr);
  }
  if (running_) {
    poll_task_ = executor_->ScheduleAfter(options_.poll_interval, [this] {
      poll_task_ = kInvalidTaskId;
      PollOnce();
    });
  }
}

void NetworkMonitor::RequestSnapshot(const NodeAddress& resolver) {
  if (options_.delta_polling) {
    MetricsDeltaRequest req;
    req.request_id = next_request_id_++;
    req.reply_to = transport_->local_address();
    auto it = resolvers_.find(resolver);
    req.since_seq = it == resolvers_.end() ? 0 : it->second.last_seq;
    transport_->Send(resolver, Encode(req));
    return;
  }
  MetricsRequest req;
  req.request_id = next_request_id_++;
  req.reply_to = transport_->local_address();
  transport_->Send(resolver, Encode(req));
}

void NetworkMonitor::OnMessage(const NodeAddress& src, const Bytes& data) {
  (void)src;
  auto env = DecodeMessage(data);
  if (!env.ok()) {
    return;
  }
  if (const auto* disc = std::get_if<DiscoveryResponse>(&env->body)) {
    HandleDiscoveryResponse(*disc);
  } else if (const auto* metrics = std::get_if<MetricsResponse>(&env->body)) {
    HandleMetricsResponse(*metrics);
  } else if (const auto* delta = std::get_if<MetricsDeltaResponse>(&env->body)) {
    HandleMetricsDeltaResponse(*delta);
  }
}

void NetworkMonitor::HandleDiscoveryResponse(const DiscoveryResponse& resp) {
  for (const DiscoveryResponse::Item& item : resp.items) {
    const NodeAddress resolver = item.endpoint.address;
    if (!resolver.IsValid()) {
      continue;
    }
    if (resolvers_.find(resolver) == resolvers_.end()) {
      ResolverStatus status;
      status.address = resolver;
      status.last_update = executor_->Now();
      status.series = MetricsTimeSeries(options_.timeseries_capacity);
      resolvers_.emplace(resolver, std::move(status));
      RequestSnapshot(resolver);
    }
  }
}

void NetworkMonitor::CommitSnapshot(ResolverStatus& status) {
  status.last_update = executor_->Now();
  status.series.Append(status.snapshot, status.last_update);
}

void NetworkMonitor::HandleMetricsResponse(const MetricsResponse& resp) {
  ++snapshots_received_;
  ResolverStatus& status = resolvers_[resp.inr];
  status.address = resp.inr;
  status.snapshot = SnapshotFromResponse(resp);
  CommitSnapshot(status);
}

void NetworkMonitor::HandleMetricsDeltaResponse(const MetricsDeltaResponse& resp) {
  ++snapshots_received_;
  ResolverStatus& status = resolvers_[resp.inr];
  status.address = resp.inr;
  if (!resp.full && resp.since_seq != status.last_seq) {
    // The delta chains onto a baseline we no longer hold (e.g. a reordered
    // late answer). Applying it would silently mix epochs: drop it and start
    // over with a full snapshot on the next poll.
    status.last_seq = 0;
    return;
  }
  if (resp.full) {
    ++fulls_received_;
  } else {
    ++deltas_received_;
  }
  ApplyMetricsDelta(resp, status.snapshot);
  status.last_seq = resp.seq;
  CommitSnapshot(status);
}

void NetworkMonitor::ForgetStale() {
  const TimePoint now = executor_->Now();
  for (auto it = resolvers_.begin(); it != resolvers_.end();) {
    if (now - it->second.last_update > options_.forget_after) {
      it = resolvers_.erase(it);
    } else {
      ++it;
    }
  }
}

SloBurn NetworkMonitor::LatencyBurn(const ResolverStatus& status) const {
  SloBurn burn;
  const SloConfig& slo = options_.slo;
  if (!slo.enabled || slo.latency_budget <= 0.0) {
    return burn;
  }
  const auto rate = [&](Duration window) {
    const Histogram delta = status.series.HistogramDelta("forwarding.lookup_us", window);
    if (delta.count() == 0) {
      return 0.0;
    }
    const double bad = static_cast<double>(CountAbove(delta, slo.latency_target_us));
    return bad / static_cast<double>(delta.count()) / slo.latency_budget;
  };
  burn.short_burn = rate(slo.short_window);
  burn.long_burn = rate(slo.long_window);
  burn.alerting =
      burn.short_burn >= slo.burn_threshold && burn.long_burn >= slo.burn_threshold;
  return burn;
}

SloBurn NetworkMonitor::GoodputBurn(const ResolverStatus& status) const {
  SloBurn burn;
  const SloConfig& slo = options_.slo;
  if (!slo.enabled || slo.drop_budget <= 0.0) {
    return burn;
  }
  const auto rate = [&](Duration window) {
    const MetricsSample* newest = status.series.Newest();
    if (newest == nullptr) {
      return 0.0;
    }
    const MetricsSample* open = status.series.NewestAtOrBefore(newest->at - window);
    if (open == nullptr) {
      open = status.series.SampleAt(status.series.oldest_seq());
    }
    if (open == nullptr || open->seq == newest->seq) {
      return 0.0;
    }
    // Clamped against counter regression: a resolver restart resets its
    // registry, and a post-restart full snapshot may read below the baseline.
    const uint64_t drops = ClampedDelta(SnapshotFamilyTotal(newest->snapshot, "forwarding.drop."),
                                        SnapshotFamilyTotal(open->snapshot, "forwarding.drop."));
    const uint64_t handled = ClampedDelta(SnapshotCounter(newest->snapshot, "forwarding.packets"),
                                          SnapshotCounter(open->snapshot, "forwarding.packets"));
    if (handled == 0) {
      return 0.0;
    }
    return static_cast<double>(drops) / static_cast<double>(handled) / slo.drop_budget;
  };
  burn.short_burn = rate(slo.short_window);
  burn.long_burn = rate(slo.long_window);
  burn.alerting =
      burn.short_burn >= slo.burn_threshold && burn.long_burn >= slo.burn_threshold;
  return burn;
}

std::vector<SloAlert> NetworkMonitor::ActiveAlerts() const {
  std::vector<SloAlert> alerts;
  if (!options_.slo.enabled) {
    return alerts;
  }
  for (const auto& [addr, status] : resolvers_) {
    const SloBurn latency = LatencyBurn(status);
    if (latency.alerting) {
      alerts.push_back({addr, "latency", latency.short_burn, latency.long_burn});
    }
    const SloBurn goodput = GoodputBurn(status);
    if (goodput.alerting) {
      alerts.push_back({addr, "goodput", goodput.short_burn, goodput.long_burn});
    }
  }
  return alerts;
}

std::string NetworkMonitor::Report() const {
  std::ostringstream os;
  const TimePoint now = executor_->Now();
  os << "netmon: " << resolvers_.size() << " resolver(s) @ " << now.count() << " us\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-21s %8s %9s %8s %10s %7s %12s %12s\n", "resolver",
                "names", "packets", "lookups", "delivered", "drops", "lookup_p50us",
                "lookup_p99us");
  os << line;
  for (const auto& [addr, status] : resolvers_) {
    const MetricsSnapshot& s = status.snapshot;
    int64_t names = 0;
    if (auto it = s.gauges.find("inr.names"); it != s.gauges.end()) {
      names = it->second;
    }
    uint64_t p50 = 0;
    uint64_t p99 = 0;
    if (auto it = s.histograms.find("forwarding.lookup_us"); it != s.histograms.end()) {
      p50 = it->second.P50();
      p99 = it->second.P99();
    }
    std::snprintf(line, sizeof(line),
                  "%-21s %8" PRId64 " %9" PRIu64 " %8" PRIu64 " %10" PRIu64 " %7" PRIu64
                  " %12" PRIu64 " %12" PRIu64 "\n",
                  addr.ToString().c_str(), names, SnapshotCounter(s, "forwarding.packets"),
                  SnapshotCounter(s, "forwarding.lookups"),
                  SnapshotCounter(s, "forwarding.local_deliveries"),
                  SnapshotFamilyTotal(s, "forwarding.drop."), p50, p99);
    os << line;
  }
  if (options_.slo.enabled) {
    os << "SLO: latency<=" << options_.slo.latency_target_us
       << "us budget=" << options_.slo.latency_budget
       << " drop budget=" << options_.slo.drop_budget
       << " burn threshold=" << options_.slo.burn_threshold << "\n";
    for (const auto& [addr, status] : resolvers_) {
      const SloBurn latency = LatencyBurn(status);
      const SloBurn goodput = GoodputBurn(status);
      std::snprintf(line, sizeof(line),
                    "%-21s latency burn %6.2f/%6.2f%s  goodput burn %6.2f/%6.2f%s\n",
                    addr.ToString().c_str(), latency.short_burn, latency.long_burn,
                    latency.alerting ? " ALERT" : "", goodput.short_burn, goodput.long_burn,
                    goodput.alerting ? " ALERT" : "");
      os << line;
    }
  }
  return os.str();
}

}  // namespace ins
