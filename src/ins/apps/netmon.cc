#include "ins/apps/netmon.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <vector>

namespace ins {

namespace {

// Sum of every counter in `snapshot` whose name starts with `prefix` — the
// snapshot-side analogue of MetricsRegistry::FamilyTotal.
uint64_t SnapshotFamilyTotal(const MetricsSnapshot& snapshot, const std::string& prefix) {
  uint64_t total = 0;
  for (auto it = snapshot.counters.lower_bound(prefix);
       it != snapshot.counters.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    total += it->second;
  }
  return total;
}

uint64_t SnapshotCounter(const MetricsSnapshot& snapshot, const std::string& name) {
  auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

}  // namespace

NetworkMonitor::NetworkMonitor(Executor* executor, Transport* transport, Options options)
    : executor_(executor), transport_(transport), options_(std::move(options)) {
  transport_->SetReceiveHandler(
      [this](const NodeAddress& src, const Bytes& data) { OnMessage(src, data); });
}

NetworkMonitor::~NetworkMonitor() {
  Stop();
  transport_->SetReceiveHandler(nullptr);
}

void NetworkMonitor::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  PollOnce();
}

void NetworkMonitor::Stop() {
  running_ = false;
  if (poll_task_ != kInvalidTaskId) {
    executor_->Cancel(poll_task_);
    poll_task_ = kInvalidTaskId;
  }
}

void NetworkMonitor::PollOnce() {
  ++polls_sent_;
  ForgetStale();
  // Round 1: who is out there? Resolvers self-advertise under
  // [service=netmon]; any one resolver can answer for the whole namespace.
  DiscoveryRequest req;
  req.request_id = next_request_id_++;
  req.vspace = options_.vspace;
  req.filter_text = "[service=netmon]";
  req.reply_to = transport_->local_address();
  transport_->Send(options_.inr, Encode(req));
  // Round 2 for already-known resolvers happens immediately; newly discovered
  // ones are polled when the discovery response arrives.
  for (const auto& [addr, status] : resolvers_) {
    RequestSnapshot(addr);
  }
  if (running_) {
    poll_task_ = executor_->ScheduleAfter(options_.poll_interval, [this] {
      poll_task_ = kInvalidTaskId;
      PollOnce();
    });
  }
}

void NetworkMonitor::RequestSnapshot(const NodeAddress& resolver) {
  MetricsRequest req;
  req.request_id = next_request_id_++;
  req.reply_to = transport_->local_address();
  transport_->Send(resolver, Encode(req));
}

void NetworkMonitor::OnMessage(const NodeAddress& src, const Bytes& data) {
  (void)src;
  auto env = DecodeMessage(data);
  if (!env.ok()) {
    return;
  }
  if (const auto* disc = std::get_if<DiscoveryResponse>(&env->body)) {
    HandleDiscoveryResponse(*disc);
  } else if (const auto* metrics = std::get_if<MetricsResponse>(&env->body)) {
    HandleMetricsResponse(*metrics);
  }
}

void NetworkMonitor::HandleDiscoveryResponse(const DiscoveryResponse& resp) {
  for (const DiscoveryResponse::Item& item : resp.items) {
    const NodeAddress resolver = item.endpoint.address;
    if (!resolver.IsValid()) {
      continue;
    }
    if (resolvers_.find(resolver) == resolvers_.end()) {
      ResolverStatus status;
      status.address = resolver;
      status.last_update = executor_->Now();
      resolvers_.emplace(resolver, std::move(status));
      RequestSnapshot(resolver);
    }
  }
}

void NetworkMonitor::HandleMetricsResponse(const MetricsResponse& resp) {
  ++snapshots_received_;
  ResolverStatus& status = resolvers_[resp.inr];
  status.address = resp.inr;
  status.snapshot = SnapshotFromResponse(resp);
  status.last_update = executor_->Now();
}

void NetworkMonitor::ForgetStale() {
  const TimePoint now = executor_->Now();
  for (auto it = resolvers_.begin(); it != resolvers_.end();) {
    if (now - it->second.last_update > options_.forget_after) {
      it = resolvers_.erase(it);
    } else {
      ++it;
    }
  }
}

std::string NetworkMonitor::Report() const {
  std::ostringstream os;
  const TimePoint now = executor_->Now();
  os << "netmon: " << resolvers_.size() << " resolver(s) @ " << now.count() << " us\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-21s %8s %9s %8s %10s %7s %12s %12s\n", "resolver",
                "names", "packets", "lookups", "delivered", "drops", "lookup_p50us",
                "lookup_p99us");
  os << line;
  for (const auto& [addr, status] : resolvers_) {
    const MetricsSnapshot& s = status.snapshot;
    int64_t names = 0;
    if (auto it = s.gauges.find("inr.names"); it != s.gauges.end()) {
      names = it->second;
    }
    uint64_t p50 = 0;
    uint64_t p99 = 0;
    if (auto it = s.histograms.find("forwarding.lookup_us"); it != s.histograms.end()) {
      p50 = it->second.P50();
      p99 = it->second.P99();
    }
    std::snprintf(line, sizeof(line),
                  "%-21s %8" PRId64 " %9" PRIu64 " %8" PRIu64 " %10" PRIu64 " %7" PRIu64
                  " %12" PRIu64 " %12" PRIu64 "\n",
                  addr.ToString().c_str(), names, SnapshotCounter(s, "forwarding.packets"),
                  SnapshotCounter(s, "forwarding.lookups"),
                  SnapshotCounter(s, "forwarding.local_deliveries"),
                  SnapshotFamilyTotal(s, "forwarding.drop."), p50, p99);
    os << line;
  }
  return os.str();
}

}  // namespace ins
