#include "ins/apps/camera.h"

namespace ins {

namespace {

// Image payloads: u64 request id (0 = unsolicited subscription frame),
// followed by the image bytes.
Bytes EncodeImagePayload(uint64_t id, const Bytes& image) {
  ByteWriter w;
  w.WriteU64(id);
  w.WriteBytes(image);
  return std::move(w).TakeBytes();
}

Result<std::pair<uint64_t, Bytes>> DecodeImagePayload(const Bytes& payload) {
  ByteReader r(payload);
  uint64_t id = 0;
  INS_ASSIGN_OR_RETURN(id, r.ReadU64());
  Bytes image;
  INS_ASSIGN_OR_RETURN(image, r.ReadBytes(r.remaining()));
  return std::make_pair(id, std::move(image));
}

// The room-scoped transmitter name requests are addressed to. Published
// frames use it as their source name so the INR packet cache key matches
// later requests byte for byte.
NameSpecifier TransmitterQueryName(const std::string& room) {
  NameSpecifier n;
  n.AddPath({{"service", "camera"}, {"entity", "transmitter"}});
  n.AddPath({{"room", room}});
  return n;
}

NameSpecifier SubscriberGroupName(const std::string& room) {
  NameSpecifier n;
  n.AddPath({{"service", "camera"}, {"entity", "receiver"}});
  n.AddPathValue({{"service", "camera"}, {"entity", "receiver"}}, "id", Value::Wildcard());
  n.AddPath({{"room", room}});
  return n;
}

}  // namespace

// --- CameraTransmitter ---------------------------------------------------------

NameSpecifier CameraTransmitter::NameFor(const std::string& id, const std::string& room) {
  NameSpecifier n;
  n.AddPath({{"service", "camera"}, {"entity", "transmitter"}, {"id", id}});
  n.AddPath({{"room", room}});
  return n;
}

CameraTransmitter::CameraTransmitter(InsClient* client, const std::string& id,
                                     const std::string& room)
    : client_(client), id_(id), room_(room) {
  advertisement_ = client_->Advertise(NameFor(id_, room_));
  client_->OnData(
      [this](const NameSpecifier& source, const Bytes& payload) { OnData(source, payload); });
}

const NameSpecifier& CameraTransmitter::name() const { return advertisement_->name(); }

void CameraTransmitter::OnData(const NameSpecifier& source, const Bytes& payload) {
  auto req = DecodeImagePayload(payload);
  if (!req.ok() || source.empty()) {
    return;
  }
  ++requests_served_;
  // Reply to the requester's own intentional name; the id attribute in it
  // makes sure only that receiver gets the image.
  client_->SendAnycast(source, EncodeImagePayload(req->first, image_),
                       TransmitterQueryName(room_));
}

void CameraTransmitter::PublishToSubscribers(uint32_t cache_lifetime_s) {
  client_->SendMulticast(SubscriberGroupName(room_), EncodeImagePayload(0, image_),
                         TransmitterQueryName(room_), cache_lifetime_s);
}

void CameraTransmitter::MoveToRoom(const std::string& room) {
  room_ = room;
  advertisement_->SetName(NameFor(id_, room_));
}

// --- CameraReceiver -------------------------------------------------------------

CameraReceiver::CameraReceiver(InsClient* client, const std::string& id)
    : client_(client), id_(id) {
  name_.AddPath({{"service", "camera"}, {"entity", "receiver"}, {"id", id_}});
  advertisement_ = client_->Advertise(name_);
  client_->OnData(
      [this](const NameSpecifier& source, const Bytes& payload) { OnData(source, payload); });
}

void CameraReceiver::RequestImage(const std::string& room, bool allow_cached,
                                  ImageCallback cb, Duration timeout) {
  // The request must be routable back: our advertised name is the source.
  uint64_t id = next_request_id_++;
  TaskId timeout_task = client_->executor()->ScheduleAfter(timeout, [this, id] {
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      return;
    }
    ImageCallback cb2 = std::move(it->second.callback);
    pending_.erase(it);
    cb2(DeadlineExceededError("image request timed out"), {});
  });
  pending_.emplace(id, PendingRequest{std::move(cb), timeout_task});

  Bytes payload = EncodeImagePayload(id, {});
  NameSpecifier dst = TransmitterQueryName(room);
  if (allow_cached) {
    client_->SendCacheable(dst, payload, name_);
  } else {
    client_->SendAnycast(dst, payload, name_);
  }
}

void CameraReceiver::Subscribe(const std::string& room) {
  NameSpecifier subscribed;
  subscribed.AddPath({{"service", "camera"}, {"entity", "receiver"}, {"id", id_}});
  subscribed.AddPath({{"room", room}});
  advertisement_->SetName(subscribed);
}

void CameraReceiver::Unsubscribe() { advertisement_->SetName(name_); }

void CameraReceiver::OnData(const NameSpecifier& source, const Bytes& payload) {
  auto decoded = DecodeImagePayload(payload);
  if (!decoded.ok()) {
    return;
  }
  auto [id, image] = std::move(*decoded);

  if (id != 0) {
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      return;  // duplicate or late response
    }
    client_->executor()->Cancel(it->second.timeout_task);
    ImageCallback cb = std::move(it->second.callback);
    pending_.erase(it);
    cb(Status::Ok(), std::move(image));
    return;
  }

  // Unsolicited frame: either a subscription push or a cached answer to the
  // oldest outstanding request.
  if (!pending_.empty()) {
    auto it = pending_.begin();
    client_->executor()->Cancel(it->second.timeout_task);
    ImageCallback cb = std::move(it->second.callback);
    pending_.erase(it);
    cb(Status::Ok(), std::move(image));
    return;
  }
  if (on_frame) {
    on_frame(source, image);
  }
}

}  // namespace ins
