// Printer: a load-balancing printer utility (paper §3.3).
//
// PrinterSpooler is a proxy for a physical printer. It advertises
// [service=printer[entity=spooler][id=...]][room=...] with an anycast metric
// derived from its state — queued bytes, and a penalty while in error — and
// re-advertises whenever the metric changes, so INRs always route new jobs
// to the currently least-loaded printer.
//
// PrinterClient submits jobs two ways: directly to a named printer, or by
// location — the paper's day-to-day mode — where the printer id is omitted
// on purpose and intentional anycast picks the best spooler in the room. It
// can also list a queue and remove its own jobs.

#ifndef INS_APPS_PRINTER_H_
#define INS_APPS_PRINTER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ins/client/api.h"

namespace ins {

struct PrintJob {
  uint64_t id = 0;
  std::string user;
  uint32_t size_bytes = 0;
};

struct PrinterSpoolerOptions {
  // Bytes drained from the head job per processing tick.
  uint32_t bytes_per_tick = 4096;
  Duration tick_interval = Seconds(1);
  // Metric = queued_bytes * per_byte + error * error_penalty.
  double metric_per_queued_byte = 1.0 / 1024.0;  // ~1 point per KiB
  double error_penalty = 1e6;
};

class PrinterSpooler {
 public:
  using Options = PrinterSpoolerOptions;

  PrinterSpooler(InsClient* client, const std::string& id, const std::string& room,
                 Options options = {});
  ~PrinterSpooler();

  const std::string& id() const { return id_; }
  const std::deque<PrintJob>& queue() const { return queue_; }
  size_t queued_bytes() const;
  double current_metric() const;

  // Error status (paper: the advertised metric accounts for error state).
  void SetError(bool error);
  bool error() const { return error_; }

  uint64_t jobs_completed() const { return jobs_completed_; }

 private:
  void OnData(const NameSpecifier& source, const Bytes& payload);
  void ProcessTick();
  void UpdateMetric();

  InsClient* client_;
  std::string id_;
  std::string room_;
  Options options_;
  std::unique_ptr<AdvertisementHandle> advertisement_;
  std::deque<PrintJob> queue_;
  uint32_t head_progress_ = 0;  // bytes already printed of the head job
  bool error_ = false;
  uint64_t next_job_id_ = 1;
  uint64_t jobs_completed_ = 0;
  TaskId tick_task_ = kInvalidTaskId;
};

class PrinterClient {
 public:
  PrinterClient(InsClient* client, const std::string& user);

  // Outcome of a submission: which printer took the job and its job id.
  struct SubmitResult {
    std::string printer_id;
    uint64_t job_id = 0;
  };
  using SubmitCallback = std::function<void(Status, SubmitResult)>;
  using ListCallback = std::function<void(Status, std::vector<PrintJob>)>;
  using RemoveCallback = std::function<void(Status)>;

  // "Submit job to name": a specific printer, anywhere.
  void SubmitToPrinter(const std::string& printer_id, const Bytes& document,
                       SubmitCallback cb);
  // Location-based submission: intentional anycast to the least-loaded
  // spooler in `room` (the printer's name is omitted on purpose).
  void SubmitToBest(const std::string& room, const Bytes& document, SubmitCallback cb);

  // Queue listing and job removal (only the submitting user may remove).
  void ListJobs(const std::string& printer_id, ListCallback cb);
  void RemoveJob(const std::string& printer_id, uint64_t job_id, RemoveCallback cb);

  const std::string& user() const { return user_; }

 private:
  void OnData(const NameSpecifier& source, const Bytes& payload);
  void Submit(const NameSpecifier& destination, const Bytes& document, SubmitCallback cb);

  InsClient* client_;
  std::string user_;
  NameSpecifier own_name_;
  std::unique_ptr<AdvertisementHandle> advertisement_;
  uint64_t next_request_id_ = 1;

  struct Pending {
    SubmitCallback submit;
    ListCallback list;
    RemoveCallback remove;
    TaskId timeout_task;
  };
  std::map<uint64_t, Pending> pending_;
};

}  // namespace ins

#endif  // INS_APPS_PRINTER_H_
