#include "ins/apps/floorplan.h"

#include "ins/name/parser.h"

namespace ins {

namespace {

// Locator request/response payloads: u64 request id + region string.
Bytes EncodeMapRequest(uint64_t id, const std::string& region) {
  ByteWriter w;
  w.WriteU64(id);
  w.WriteString(region);
  return std::move(w).TakeBytes();
}

struct MapRequest {
  uint64_t id;
  std::string region;
};

Result<MapRequest> DecodeMapRequest(const Bytes& payload) {
  ByteReader r(payload);
  MapRequest req;
  INS_ASSIGN_OR_RETURN(req.id, r.ReadU64());
  INS_ASSIGN_OR_RETURN(req.region, r.ReadString());
  return req;
}

Bytes EncodeMapResponse(uint64_t id, bool found, const Bytes& map_data) {
  ByteWriter w;
  w.WriteU64(id);
  w.WriteU8(found ? 1 : 0);
  w.WriteU32(static_cast<uint32_t>(map_data.size()));
  w.WriteBytes(map_data);
  return std::move(w).TakeBytes();
}

struct MapResponse {
  uint64_t id;
  bool found;
  Bytes map_data;
};

Result<MapResponse> DecodeMapResponse(const Bytes& payload) {
  ByteReader r(payload);
  MapResponse resp;
  INS_ASSIGN_OR_RETURN(resp.id, r.ReadU64());
  uint8_t found = 0;
  INS_ASSIGN_OR_RETURN(found, r.ReadU8());
  resp.found = found != 0;
  uint32_t len = 0;
  INS_ASSIGN_OR_RETURN(len, r.ReadU32());
  INS_ASSIGN_OR_RETURN(resp.map_data, r.ReadBytes(len));
  return resp;
}

}  // namespace

// --- LocatorService ----------------------------------------------------------

LocatorService::LocatorService(InsClient* client) : client_(client) {
  NameSpecifier name;
  name.AddPath({{"service", "locator"}, {"entity", "server"}});
  advertisement_ = client_->Advertise(name);
  client_->OnData(
      [this](const NameSpecifier& source, const Bytes& payload) { OnData(source, payload); });
}

void LocatorService::AddMap(const std::string& region, Bytes map_data) {
  maps_[region] = std::move(map_data);
}

void LocatorService::OnData(const NameSpecifier& source, const Bytes& payload) {
  auto req = DecodeMapRequest(payload);
  if (!req.ok() || source.empty()) {
    return;
  }
  ++requests_served_;
  auto it = maps_.find(req->region);
  const bool found = it != maps_.end();
  // The requester's intentional name routes the response (paper §3.1).
  client_->SendAnycast(source, EncodeMapResponse(req->id, found, found ? it->second : Bytes{}),
                       advertisement_->name());
}

// --- FloorplanApp -------------------------------------------------------------

FloorplanApp::FloorplanApp(InsClient* client, const std::string& display_id)
    : client_(client) {
  own_name_.AddPath({{"service", "floorplan"}, {"entity", "display"}, {"id", display_id}});
  advertisement_ = client_->Advertise(own_name_);
  client_->OnData(
      [this](const NameSpecifier& source, const Bytes& payload) { OnData(source, payload); });
}

void FloorplanApp::Refresh(std::function<void(Status)> done) {
  client_->Discover(
      filter_, "", [this, done = std::move(done)](Status s, auto names) {
        if (!s.ok()) {
          done(s);
          return;
        }
        icons_.clear();
        for (const InsClient::DiscoveredName& dn : names) {
          Icon icon;
          icon.service = dn.name.GetValue({"service"}).value_or("");
          icon.room = dn.name.GetValue({"room"}).value_or("");
          icon.name = dn.name;
          icon.metric = dn.app_metric;
          if (icon.service == "floorplan") {
            continue;  // not a service users click on
          }
          icons_[dn.name.ToString()] = std::move(icon);
        }
        done(Status::Ok());
      });
}

void FloorplanApp::RequestMap(const std::string& region, MapCallback cb) {
  uint64_t id = next_request_id_++;
  pending_maps_[id] = std::move(cb);
  NameSpecifier locator;
  locator.AddPath({{"service", "locator"}, {"entity", "server"}});
  client_->SendAnycast(locator, EncodeMapRequest(id, region), own_name_);
}

void FloorplanApp::OnData(const NameSpecifier& source, const Bytes& payload) {
  (void)source;
  auto resp = DecodeMapResponse(payload);
  if (!resp.ok()) {
    return;
  }
  auto it = pending_maps_.find(resp->id);
  if (it == pending_maps_.end()) {
    return;
  }
  MapCallback cb = std::move(it->second);
  pending_maps_.erase(it);
  if (resp->found) {
    cb(Status::Ok(), std::move(resp->map_data));
  } else {
    cb(NotFoundError("no map for region"), {});
  }
}

}  // namespace ins
