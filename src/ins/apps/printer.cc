#include "ins/apps/printer.h"

#include <numeric>

namespace ins {

namespace {

// Spooler control protocol, carried in packet payloads.
enum class Op : uint8_t {
  kSubmit = 1,
  kSubmitAck = 2,
  kList = 3,
  kListResponse = 4,
  kRemove = 5,
  kRemoveAck = 6,
};

NameSpecifier SpoolerName(const std::string& id, const std::string& room) {
  NameSpecifier n;
  n.AddPath({{"service", "printer"}, {"entity", "spooler"}, {"id", id}});
  n.AddPath({{"room", room}});
  return n;
}

NameSpecifier SpoolerById(const std::string& id) {
  NameSpecifier n;
  n.AddPath({{"service", "printer"}, {"entity", "spooler"}, {"id", id}});
  return n;
}

NameSpecifier SpoolerInRoom(const std::string& room) {
  // The printer's id is omitted on purpose: anycast picks the best one.
  NameSpecifier n;
  n.AddPath({{"service", "printer"}, {"entity", "spooler"}});
  n.AddPath({{"room", room}});
  return n;
}

}  // namespace

// --- PrinterSpooler -------------------------------------------------------------

PrinterSpooler::PrinterSpooler(InsClient* client, const std::string& id,
                               const std::string& room, Options options)
    : client_(client), id_(id), room_(room), options_(options) {
  advertisement_ = client_->Advertise(SpoolerName(id_, room_), {{515, "lpd"}},
                                      current_metric());
  client_->OnData(
      [this](const NameSpecifier& source, const Bytes& payload) { OnData(source, payload); });
  tick_task_ = client_->executor()->ScheduleAfter(options_.tick_interval,
                                                  [this] { ProcessTick(); });
}

PrinterSpooler::~PrinterSpooler() { client_->executor()->Cancel(tick_task_); }

size_t PrinterSpooler::queued_bytes() const {
  size_t total = std::accumulate(
      queue_.begin(), queue_.end(), size_t{0},
      [](size_t acc, const PrintJob& j) { return acc + j.size_bytes; });
  return total - std::min<size_t>(total, head_progress_);
}

double PrinterSpooler::current_metric() const {
  return static_cast<double>(queued_bytes()) * options_.metric_per_queued_byte +
         (error_ ? options_.error_penalty : 0.0);
}

void PrinterSpooler::SetError(bool error) {
  error_ = error;
  UpdateMetric();
}

void PrinterSpooler::UpdateMetric() { advertisement_->SetMetric(current_metric()); }

void PrinterSpooler::ProcessTick() {
  if (!error_ && !queue_.empty()) {
    head_progress_ += options_.bytes_per_tick;
    if (head_progress_ >= queue_.front().size_bytes) {
      queue_.pop_front();
      head_progress_ = 0;
      ++jobs_completed_;
    }
    UpdateMetric();
  }
  tick_task_ = client_->executor()->ScheduleAfter(options_.tick_interval,
                                                  [this] { ProcessTick(); });
}

void PrinterSpooler::OnData(const NameSpecifier& source, const Bytes& payload) {
  ByteReader r(payload);
  auto op = r.ReadU8();
  auto request_id = r.ReadU64();
  if (!op.ok() || !request_id.ok() || source.empty()) {
    return;
  }

  ByteWriter reply;
  switch (static_cast<Op>(*op)) {
    case Op::kSubmit: {
      auto user = r.ReadString();
      auto size = r.ReadU32();
      if (!user.ok() || !size.ok()) {
        return;
      }
      PrintJob job;
      job.id = next_job_id_++;
      job.user = std::move(*user);
      job.size_bytes = *size;
      queue_.push_back(job);
      UpdateMetric();

      reply.WriteU8(static_cast<uint8_t>(Op::kSubmitAck));
      reply.WriteU64(*request_id);
      reply.WriteString(id_);
      reply.WriteU64(job.id);
      break;
    }
    case Op::kList: {
      reply.WriteU8(static_cast<uint8_t>(Op::kListResponse));
      reply.WriteU64(*request_id);
      reply.WriteU16(static_cast<uint16_t>(queue_.size()));
      for (const PrintJob& job : queue_) {
        reply.WriteU64(job.id);
        reply.WriteString(job.user);
        reply.WriteU32(job.size_bytes);
      }
      break;
    }
    case Op::kRemove: {
      auto user = r.ReadString();
      auto job_id = r.ReadU64();
      if (!user.ok() || !job_id.ok()) {
        return;
      }
      bool removed = false;
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->id == *job_id) {
          // Only the submitting user may remove the job.
          if (it->user == *user) {
            if (it == queue_.begin()) {
              head_progress_ = 0;
            }
            queue_.erase(it);
            removed = true;
          }
          break;
        }
      }
      if (removed) {
        UpdateMetric();
      }
      reply.WriteU8(static_cast<uint8_t>(Op::kRemoveAck));
      reply.WriteU64(*request_id);
      reply.WriteU8(removed ? 1 : 0);
      break;
    }
    default:
      return;  // not a spooler request
  }
  client_->SendAnycast(source, reply.bytes(), advertisement_->name());
}

// --- PrinterClient ----------------------------------------------------------------

PrinterClient::PrinterClient(InsClient* client, const std::string& user)
    : client_(client), user_(user) {
  own_name_.AddPath({{"service", "printer"}, {"entity", "client"}, {"id", user_}});
  advertisement_ = client_->Advertise(own_name_);
  client_->OnData(
      [this](const NameSpecifier& source, const Bytes& payload) { OnData(source, payload); });
}

void PrinterClient::Submit(const NameSpecifier& destination, const Bytes& document,
                           SubmitCallback cb) {
  uint64_t id = next_request_id_++;
  TaskId timeout = client_->executor()->ScheduleAfter(Seconds(2), [this, id] {
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      return;
    }
    SubmitCallback cb2 = std::move(it->second.submit);
    pending_.erase(it);
    cb2(DeadlineExceededError("print submission timed out"), {});
  });
  Pending pending;
  pending.submit = std::move(cb);
  pending.timeout_task = timeout;
  pending_.emplace(id, std::move(pending));

  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(Op::kSubmit));
  w.WriteU64(id);
  w.WriteString(user_);
  w.WriteU32(static_cast<uint32_t>(document.size()));
  client_->SendAnycast(destination, w.bytes(), own_name_);
}

void PrinterClient::SubmitToPrinter(const std::string& printer_id, const Bytes& document,
                                    SubmitCallback cb) {
  Submit(SpoolerById(printer_id), document, std::move(cb));
}

void PrinterClient::SubmitToBest(const std::string& room, const Bytes& document,
                                 SubmitCallback cb) {
  Submit(SpoolerInRoom(room), document, std::move(cb));
}

void PrinterClient::ListJobs(const std::string& printer_id, ListCallback cb) {
  uint64_t id = next_request_id_++;
  TaskId timeout = client_->executor()->ScheduleAfter(Seconds(2), [this, id] {
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      return;
    }
    ListCallback cb2 = std::move(it->second.list);
    pending_.erase(it);
    cb2(DeadlineExceededError("queue listing timed out"), {});
  });
  Pending pending;
  pending.list = std::move(cb);
  pending.timeout_task = timeout;
  pending_.emplace(id, std::move(pending));

  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(Op::kList));
  w.WriteU64(id);
  client_->SendAnycast(SpoolerById(printer_id), w.bytes(), own_name_);
}

void PrinterClient::RemoveJob(const std::string& printer_id, uint64_t job_id,
                              RemoveCallback cb) {
  uint64_t id = next_request_id_++;
  TaskId timeout = client_->executor()->ScheduleAfter(Seconds(2), [this, id] {
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      return;
    }
    RemoveCallback cb2 = std::move(it->second.remove);
    pending_.erase(it);
    cb2(DeadlineExceededError("job removal timed out"));
  });
  Pending pending;
  pending.remove = std::move(cb);
  pending.timeout_task = timeout;
  pending_.emplace(id, std::move(pending));

  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(Op::kRemove));
  w.WriteU64(id);
  w.WriteString(user_);
  w.WriteU64(job_id);
  client_->SendAnycast(SpoolerById(printer_id), w.bytes(), own_name_);
}

void PrinterClient::OnData(const NameSpecifier& source, const Bytes& payload) {
  (void)source;
  ByteReader r(payload);
  auto op = r.ReadU8();
  auto request_id = r.ReadU64();
  if (!op.ok() || !request_id.ok()) {
    return;
  }
  auto it = pending_.find(*request_id);
  if (it == pending_.end()) {
    return;
  }
  client_->executor()->Cancel(it->second.timeout_task);
  Pending pending = std::move(it->second);
  pending_.erase(it);

  switch (static_cast<Op>(*op)) {
    case Op::kSubmitAck: {
      auto printer = r.ReadString();
      auto job_id = r.ReadU64();
      if (!printer.ok() || !job_id.ok() || !pending.submit) {
        return;
      }
      pending.submit(Status::Ok(), SubmitResult{std::move(*printer), *job_id});
      return;
    }
    case Op::kListResponse: {
      auto n = r.ReadU16();
      if (!n.ok() || !pending.list) {
        return;
      }
      std::vector<PrintJob> jobs;
      jobs.reserve(*n);
      for (uint16_t i = 0; i < *n; ++i) {
        PrintJob job;
        auto id = r.ReadU64();
        auto user = r.ReadString();
        auto size = r.ReadU32();
        if (!id.ok() || !user.ok() || !size.ok()) {
          pending.list(InternalError("malformed queue listing"), {});
          return;
        }
        job.id = *id;
        job.user = std::move(*user);
        job.size_bytes = *size;
        jobs.push_back(std::move(job));
      }
      pending.list(Status::Ok(), std::move(jobs));
      return;
    }
    case Op::kRemoveAck: {
      auto removed = r.ReadU8();
      if (!removed.ok() || !pending.remove) {
        return;
      }
      pending.remove(*removed != 0 ? Status::Ok()
                                   : FailedPreconditionError("job not removed"));
      return;
    }
    default:
      return;
  }
}

}  // namespace ins
