#include "ins/baseline/string_name_tree.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace ins {

StringNameTree::StringNameTree() {
  root_.parent_attr = nullptr;
}

StringNameTree::~StringNameTree() = default;

void StringNameTree::CandidateSet::IntersectWith(std::vector<const NameRecord*> other) {
  std::sort(other.begin(), other.end());
  other.erase(std::unique(other.begin(), other.end()), other.end());
  if (universal) {
    universal = false;
    items = std::move(other);
    return;
  }
  std::vector<const NameRecord*> out;
  out.reserve(std::min(items.size(), other.size()));
  std::set_intersection(items.begin(), items.end(), other.begin(), other.end(),
                        std::back_inserter(out));
  items = std::move(out);
}

void StringNameTree::Graft(ValueNode* parent, const std::vector<AvPair>& pairs,
                           NameRecord* rec) {
  for (const AvPair& p : pairs) {
    std::unique_ptr<AttributeNode>& attr_slot = parent->attributes[p.attribute];
    if (attr_slot == nullptr) {
      attr_slot = std::make_unique<AttributeNode>();
      attr_slot->attribute = p.attribute;
      attr_slot->parent = parent;
    }
    AttributeNode* ta = attr_slot.get();

    const std::string token = p.value.ToToken();
    std::unique_ptr<ValueNode>& value_slot = ta->values[token];
    if (value_slot == nullptr) {
      value_slot = std::make_unique<ValueNode>();
      value_slot->value = token;
      value_slot->parent_attr = ta;
    }
    ValueNode* tv = value_slot.get();

    if (p.children.empty()) {
      tv->records.push_back(rec);
    } else {
      Graft(tv, p.children, rec);
    }
  }
}

void StringNameTree::Insert(const NameSpecifier& name, const NameRecord& info) {
  assert(!name.empty());
  auto rec = std::make_unique<NameRecord>(info);
  NameRecord* raw = rec.get();
  auto [it, inserted] = records_.emplace(info.announcer, std::move(rec));
  assert(inserted && "baseline tree only supports fresh announcers");
  (void)it;
  (void)inserted;
  Graft(&root_, name.roots(), raw);
}

void StringNameTree::SubtreeRecords(const ValueNode* node,
                                    std::vector<const NameRecord*>* out) const {
  out->insert(out->end(), node->records.begin(), node->records.end());
  for (const auto& [attr, child] : node->attributes) {
    SubtreeRecords(child.get(), out);
  }
}

void StringNameTree::SubtreeRecords(const AttributeNode* node,
                                    std::vector<const NameRecord*>* out) const {
  for (const auto& [val, child] : node->values) {
    SubtreeRecords(child.get(), out);
  }
}

void StringNameTree::LookupLevel(const ValueNode* node, const std::vector<AvPair>& pairs,
                                 CandidateSet* s) const {
  for (const AvPair& p : pairs) {
    if (s->Empty()) {
      return;
    }
    auto ait = node->attributes.find(p.attribute);
    if (ait == node->attributes.end()) {
      continue;  // `if Ta = null then continue`
    }
    const AttributeNode* ta = ait->second.get();

    if (p.value.is_wildcard()) {
      std::vector<const NameRecord*> sub;
      SubtreeRecords(ta, &sub);
      s->IntersectWith(std::move(sub));
      continue;
    }

    if (p.value.is_range()) {
      // The pre-interning cost model under measurement: every candidate
      // token re-parsed per query.
      std::vector<const NameRecord*> sub;
      for (const auto& [token, child] : ta->values) {
        if (p.value.Accepts(token)) {
          SubtreeRecords(child.get(), &sub);
        }
      }
      s->IntersectWith(std::move(sub));
      continue;
    }

    auto vit = ta->values.find(p.value.literal());
    if (vit == ta->values.end()) {
      s->IntersectWith({});
      return;
    }
    const ValueNode* tv = vit->second.get();

    if (p.children.empty()) {
      std::vector<const NameRecord*> sub;
      SubtreeRecords(tv, &sub);
      s->IntersectWith(std::move(sub));
    } else if (tv->attributes.empty()) {
      s->IntersectWith({tv->records.begin(), tv->records.end()});
    } else {
      CandidateSet sub;
      LookupLevel(tv, p.children, &sub);
      if (!sub.universal) {
        std::vector<const NameRecord*> merged = std::move(sub.items);
        merged.insert(merged.end(), tv->records.begin(), tv->records.end());
        s->IntersectWith(std::move(merged));
      }
    }
  }
}

std::vector<const NameRecord*> StringNameTree::Lookup(const NameSpecifier& query) const {
  CandidateSet s;
  LookupLevel(&root_, query.roots(), &s);
  if (s.universal) {
    std::vector<const NameRecord*> out;
    out.reserve(records_.size());
    for (const auto& [id, rec] : records_) {
      out.push_back(rec.get());
    }
    return out;
  }
  std::vector<const NameRecord*> out = std::move(s.items);
  std::sort(out.begin(), out.end(), [](const NameRecord* a, const NameRecord* b) {
    return a->announcer < b->announcer;
  });
  return out;
}

size_t StringNameTree::MemoryBytes() const {
  // The pre-interning accounting: node structs, per-key heap strings, and
  // unordered_map bucket arrays (approximated as one pointer per bucket plus
  // one heap node per element, the libstdc++ layout).
  size_t bytes = 0;
  auto string_bytes = [](const std::string& s) {
    return s.capacity() > sizeof(std::string) ? s.capacity() : 0;
  };
  std::function<void(const ValueNode&)> walk = [&](const ValueNode& v) {
    bytes += sizeof(ValueNode) + string_bytes(v.value) +
             v.records.capacity() * sizeof(NameRecord*);
    bytes += v.attributes.bucket_count() * sizeof(void*);
    for (const auto& [attr, child] : v.attributes) {
      bytes += sizeof(std::string) + string_bytes(attr) + 2 * sizeof(void*);  // map node
      bytes += sizeof(AttributeNode) + string_bytes(child->attribute);
      bytes += child->values.bucket_count() * sizeof(void*);
      for (const auto& [val, grandchild] : child->values) {
        bytes += sizeof(std::string) + string_bytes(val) + 2 * sizeof(void*);
        walk(*grandchild);
      }
    }
  };
  walk(root_);
  bytes += records_.size() * (72 + sizeof(NameRecord));  // map nodes + records
  return bytes;
}

}  // namespace ins
