#include "ins/baseline/linear_name_table.h"

#include <algorithm>

#include "ins/name/matcher.h"

namespace ins {

void LinearNameTable::Upsert(NameSpecifier name, NameRecord record) {
  for (Entry& e : entries_) {
    if (e.record.announcer == record.announcer) {
      e.name = std::move(name);
      e.record = std::move(record);
      return;
    }
  }
  entries_.push_back(Entry{std::move(name), std::move(record)});
}

bool LinearNameTable::Remove(const AnnouncerId& id) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&id](const Entry& e) { return e.record.announcer == id; });
  if (it == entries_.end()) {
    return false;
  }
  entries_.erase(it);
  return true;
}

size_t LinearNameTable::ExpireBefore(TimePoint now) {
  size_t before = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [now](const Entry& e) { return e.record.expires < now; }),
                 entries_.end());
  return before - entries_.size();
}

std::vector<const NameRecord*> LinearNameTable::Lookup(const NameSpecifier& query) const {
  std::vector<const NameRecord*> out;
  for (const Entry& e : entries_) {
    if (Matches(e.name, query)) {
      out.push_back(&e.record);
    }
  }
  std::sort(out.begin(), out.end(), [](const NameRecord* a, const NameRecord* b) {
    return a->announcer < b->announcer;
  });
  return out;
}

}  // namespace ins
