// Baseline name service: DNS-style static hostname resolution with
// round-robin selection.
//
// The paper positions INS's metric-based resolution and late binding against
// what DNS gives you: a hostname maps to a fixed list of addresses, clients
// pick round-robin (no notion of load), and the binding is made at resolve
// time (a resolved address goes stale when the node moves). This baseline
// implements exactly that contract for the anycast-vs-DNS ablation bench and
// for tests that document the behavioural gap.

#ifndef INS_BASELINE_DNS_BASELINE_H_
#define INS_BASELINE_DNS_BASELINE_H_

#include <map>
#include <string>
#include <vector>

#include "ins/common/node_address.h"
#include "ins/common/status.h"

namespace ins {

class DnsBaseline {
 public:
  // Registers an address for a hostname (appends to the RRset).
  void AddRecord(const std::string& hostname, const NodeAddress& address);
  bool RemoveRecord(const std::string& hostname, const NodeAddress& address);

  // Returns the whole RRset (like a DNS A lookup).
  Result<std::vector<NodeAddress>> ResolveAll(const std::string& hostname) const;

  // Round-robin: successive calls rotate through the RRset.
  Result<NodeAddress> ResolveOne(const std::string& hostname);

  size_t record_count(const std::string& hostname) const;

 private:
  struct RrSet {
    std::vector<NodeAddress> addresses;
    size_t next = 0;  // round-robin cursor
  };
  std::map<std::string, RrSet> records_;
};

}  // namespace ins

#endif  // INS_BASELINE_DNS_BASELINE_H_
