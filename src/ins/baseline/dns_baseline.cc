#include "ins/baseline/dns_baseline.h"

#include <algorithm>

namespace ins {

void DnsBaseline::AddRecord(const std::string& hostname, const NodeAddress& address) {
  records_[hostname].addresses.push_back(address);
}

bool DnsBaseline::RemoveRecord(const std::string& hostname, const NodeAddress& address) {
  auto it = records_.find(hostname);
  if (it == records_.end()) {
    return false;
  }
  auto& addrs = it->second.addresses;
  auto pos = std::find(addrs.begin(), addrs.end(), address);
  if (pos == addrs.end()) {
    return false;
  }
  addrs.erase(pos);
  if (addrs.empty()) {
    records_.erase(it);
  }
  return true;
}

Result<std::vector<NodeAddress>> DnsBaseline::ResolveAll(const std::string& hostname) const {
  auto it = records_.find(hostname);
  if (it == records_.end()) {
    return NotFoundError("NXDOMAIN: " + hostname);
  }
  return it->second.addresses;
}

Result<NodeAddress> DnsBaseline::ResolveOne(const std::string& hostname) {
  auto it = records_.find(hostname);
  if (it == records_.end()) {
    return NotFoundError("NXDOMAIN: " + hostname);
  }
  RrSet& rr = it->second;
  NodeAddress out = rr.addresses[rr.next % rr.addresses.size()];
  rr.next = (rr.next + 1) % rr.addresses.size();
  return out;
}

size_t DnsBaseline::record_count(const std::string& hostname) const {
  auto it = records_.find(hostname);
  return it == records_.end() ? 0 : it->second.addresses.size();
}

}  // namespace ins
