// Baseline name-tree: the pre-interning, string-keyed LOOKUP-NAME core.
//
// This preserves the resolver's original hot-path data layout so the
// interning ablation (bench_ablation_interning) has a live comparator:
// per-node `unordered_map<std::string, unique_ptr<...>>` children probed with
// freshly hashed strings, range matching that re-parses each candidate token
// per query (Value::Accepts -> strtod), and intersection vectors allocated
// anew on every call. Algorithmically identical to NameTree (same Figure 5
// single pass, same results, same candidate-set semantics); only the constant
// factors differ. Update/expiry bookkeeping is trimmed to what the bench
// exercises: Upsert of fresh announcers plus Lookup.

#ifndef INS_BASELINE_STRING_NAME_TREE_H_
#define INS_BASELINE_STRING_NAME_TREE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ins/name/name_specifier.h"
#include "ins/nametree/name_record.h"

namespace ins {

class StringNameTree {
 public:
  StringNameTree();
  ~StringNameTree();

  StringNameTree(const StringNameTree&) = delete;
  StringNameTree& operator=(const StringNameTree&) = delete;

  // Inserts `info` under `name`. The announcer must be new (the ablation
  // populates once, then measures lookups).
  void Insert(const NameSpecifier& name, const NameRecord& info);

  // LOOKUP-NAME, string-keyed: results sorted by announcer, identical to
  // NameTree::Lookup on the same contents.
  std::vector<const NameRecord*> Lookup(const NameSpecifier& query) const;

  size_t record_count() const { return records_.size(); }

  // Estimated resident bytes, mirroring the accounting NameTree::ComputeStats
  // used before interning (per-node string keys counted here).
  size_t MemoryBytes() const;

 private:
  struct AttributeNode;
  struct ValueNode;

  struct AttributeNode {
    std::string attribute;
    ValueNode* parent;
    std::unordered_map<std::string, std::unique_ptr<ValueNode>> values;
  };

  struct ValueNode {
    std::string value;
    AttributeNode* parent_attr = nullptr;
    std::unordered_map<std::string, std::unique_ptr<AttributeNode>> attributes;
    std::vector<NameRecord*> records;
  };

  struct CandidateSet {
    bool universal = true;
    std::vector<const NameRecord*> items;

    bool Empty() const { return !universal && items.empty(); }
    void IntersectWith(std::vector<const NameRecord*> other);
  };

  void Graft(ValueNode* parent, const std::vector<AvPair>& pairs, NameRecord* rec);
  void LookupLevel(const ValueNode* node, const std::vector<AvPair>& pairs,
                   CandidateSet* s) const;
  void SubtreeRecords(const ValueNode* node, std::vector<const NameRecord*>* out) const;
  void SubtreeRecords(const AttributeNode* node, std::vector<const NameRecord*>* out) const;

  ValueNode root_;
  std::map<AnnouncerId, std::unique_ptr<NameRecord>> records_;
};

}  // namespace ins

#endif  // INS_BASELINE_STRING_NAME_TREE_H_
