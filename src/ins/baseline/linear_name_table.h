// Baseline resolver data structure: a flat list of advertisements matched by
// linear scan.
//
// The paper's §5.1.1 analysis contrasts LOOKUP-NAME's hash-table variant
// (Θ(n_a^d (1+b))) against linear search (Θ(n_a^d (r_a+r_v+b))). This table
// is the degenerate end of that spectrum — no shared structure at all: every
// lookup tests every advertisement with the per-advertisement Matches()
// predicate. It doubles as a semantic reference model (prose semantics,
// omitted attributes are wildcards both ways) and as the comparator in the
// lookup-scaling ablation bench.

#ifndef INS_BASELINE_LINEAR_NAME_TABLE_H_
#define INS_BASELINE_LINEAR_NAME_TABLE_H_

#include <vector>

#include "ins/name/name_specifier.h"
#include "ins/nametree/name_record.h"

namespace ins {

class LinearNameTable {
 public:
  struct Entry {
    NameSpecifier name;
    NameRecord record;
  };

  // Inserts or replaces (by AnnouncerId).
  void Upsert(NameSpecifier name, NameRecord record);
  bool Remove(const AnnouncerId& id);
  size_t ExpireBefore(TimePoint now);

  // Linear-scan lookup via Matches(); results sorted by AnnouncerId.
  std::vector<const NameRecord*> Lookup(const NameSpecifier& query) const;

  size_t size() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace ins

#endif  // INS_BASELINE_LINEAR_NAME_TABLE_H_
