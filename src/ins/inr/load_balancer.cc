#include "ins/inr/load_balancer.h"

#include <map>

#include "ins/common/logging.h"
#include "ins/inr/name_discovery.h"

namespace ins {

LoadBalancer::LoadBalancer(Executor* executor, SendFn send, NodeAddress self,
                           NodeAddress dsr, VspaceManager* vspaces, NameDiscovery* discovery,
                           MetricsRegistry* metrics, LoadBalancerConfig config)
    : executor_(executor),
      send_(std::move(send)),
      self_(self),
      dsr_(dsr),
      vspaces_(vspaces),
      discovery_(discovery),
      metrics_(metrics),
      config_(config) {}

LoadBalancer::~LoadBalancer() { Stop(); }

void LoadBalancer::Start() {
  // Replica-set maintenance runs whenever replica mode is on, even with the
  // load-balancing heuristics themselves disabled.
  if (config_.replica_k >= 2) {
    replica_task_ =
        executor_->ScheduleAfter(config_.replica_interval, [this] { ReplicaTick(); });
  }
  if (!config_.enabled) {
    return;
  }
  last_lookups_ = metrics_->Counter("forwarding.lookups");
  last_update_entries_ = metrics_->Counter("discovery.update_entries_received");
  tick_task_ = executor_->ScheduleAfter(config_.eval_interval, [this] { Tick(); });
}

void LoadBalancer::Stop() {
  executor_->Cancel(tick_task_);
  tick_task_ = kInvalidTaskId;
  executor_->Cancel(replica_task_);
  replica_task_ = kInvalidTaskId;
}

void LoadBalancer::Tick() {
  const double interval_s = ToSeconds(config_.eval_interval);
  const uint64_t lookups = metrics_->Counter("forwarding.lookups");
  const uint64_t updates = metrics_->Counter("discovery.update_entries_received");
  const double lookup_rate = static_cast<double>(lookups - last_lookups_) / interval_s;
  const double update_rate = static_cast<double>(updates - last_update_entries_) / interval_s;
  last_lookups_ = lookups;
  last_update_entries_ = updates;
  metrics_->SetGauge("lb.lookup_rate", static_cast<int64_t>(lookup_rate));
  metrics_->SetGauge("lb.update_entry_rate", static_cast<int64_t>(update_rate));

  if (pending_action_ == PendingAction::kNone) {
    if (update_rate > config_.delegate_update_entries_per_sec &&
        vspaces_->RoutedSpaces().size() > 1) {
      // Update processing saturates every resolver of a space; shed a space.
      RequestCandidates(PendingAction::kDelegate);
    } else if (lookup_rate > config_.spawn_lookups_per_sec) {
      RequestCandidates(PendingAction::kSpawn);
    }
  }

  if (config_.terminate_below_lookups_per_sec > 0) {
    if (lookup_rate < config_.terminate_below_lookups_per_sec) {
      if (++idle_intervals_ >= config_.idle_intervals_before_terminate &&
          on_should_terminate) {
        metrics_->Increment("lb.terminations_requested");
        on_should_terminate();
        return;  // do not reschedule; the resolver is going away
      }
    } else {
      idle_intervals_ = 0;
    }
  }

  tick_task_ = executor_->ScheduleAfter(config_.eval_interval, [this] { Tick(); });
}

void LoadBalancer::ReplicaTick() {
  // Refresh the DSR's (suspect-filtered) view of every routed space's set.
  // The response fans out inside the Inr: the forwarder's cache and the
  // replication agent's membership ride the same answer this tick asks for.
  for (const std::string& vspace : vspaces_->RoutedSpaces()) {
    DsrReplicaSetRequest req;
    req.request_id = kReplicaRequestTag | next_request_id_++;
    req.vspace = vspace;
    send_(dsr_, Envelope{MessageBody(std::move(req))});
  }
  metrics_->Increment("replica.maintenance_ticks");
  replica_task_ =
      executor_->ScheduleAfter(config_.replica_interval, [this] { ReplicaTick(); });
}

void LoadBalancer::HandleDsrReplicaSetResponse(const DsrReplicaSetResponse& resp) {
  if ((resp.request_id & kReplicaRequestTag) == 0) {
    return;  // a forwarder-side resolution, not a maintenance answer
  }
  if (!vspaces_->Routes(resp.vspace)) {
    return;  // delegated away while the request was in flight
  }
  // Only the set's primary (front = lowest DSR join order) recruits; one
  // recruiter per set keeps members from racing duplicate invites.
  if (resp.replicas.empty() || !(resp.replicas.front() == self_)) {
    return;
  }
  size_t have = resp.replicas.size();
  const size_t want = static_cast<size_t>(config_.replica_k);
  for (const NodeAddress& candidate : resp.candidates) {
    if (have >= want) {
      break;
    }
    if (candidate == self_) {
      continue;
    }
    // Recruit, then seed the recruit with the space's full state so it
    // serves lookups before the first digest round (messages are ordered,
    // so the invite's AddSpace lands before the state push).
    send_(candidate, Envelope{MessageBody(ReplicaInvite{self_, resp.vspace})});
    discovery_->SendVspaceStateTo(candidate, resp.vspace);
    ++have;
    metrics_->Increment("replica.invites_sent");
    INS_LOG(kDebug) << self_.ToString() << ": invited " << candidate.ToString()
                    << " into replica set of '" << resp.vspace << "'";
  }
}

void LoadBalancer::RequestCandidates(PendingAction action) {
  pending_action_ = action;
  candidates_request_id_ = next_request_id_++;
  DsrCandidatesRequest req;
  req.request_id = candidates_request_id_;
  send_(dsr_, Envelope{MessageBody(req)});
}

std::string LoadBalancer::PickSpaceToDelegate() const {
  // The seed's heuristic: shed the space holding the most records — the most
  // state to stop maintaining, and the best proxy for sustained update load
  // under soft-state refresh. Per-shard write-batch counts only break ties,
  // so delegation choices match the pre-sharding resolver exactly.
  std::string best;
  uint64_t best_updates = 0;
  size_t best_names = 0;
  std::map<std::string, std::pair<uint64_t, size_t>> per_space;
  for (const ShardedNameTree::ShardStats& st : vspaces_->store().PerShardStats()) {
    auto& [updates, records] = per_space[st.vspace];
    updates += st.updates;
    records += st.records;
  }
  for (const auto& [vspace, load] : per_space) {
    const auto& [updates, records] = load;
    if (best.empty() || records > best_names ||
        (records == best_names && updates > best_updates)) {
      best_updates = updates;
      best_names = records;
      best = vspace;
    }
  }
  return best;
}

void LoadBalancer::HandleDsrCandidatesResponse(const DsrCandidatesResponse& resp) {
  if (resp.request_id != candidates_request_id_) {
    return;
  }
  candidates_request_id_ = 0;
  PendingAction action = pending_action_;
  pending_action_ = PendingAction::kNone;

  NodeAddress candidate;
  for (const NodeAddress& c : resp.candidates) {
    if (c != self_) {
      candidate = c;
      break;
    }
  }
  if (!candidate.IsValid()) {
    metrics_->Increment("lb.no_candidates");
    return;
  }

  if (action == PendingAction::kSpawn) {
    // A helper for the same spaces: load spreads as clients (re)attach.
    SpawnRequest req;
    req.requester = self_;
    req.vspaces = vspaces_->RoutedSpaces();
    send_(candidate, Envelope{MessageBody(std::move(req))});
    ++spawns_requested_;
    metrics_->Increment("lb.spawns_requested");
    INS_LOG(kDebug) << self_.ToString() << ": spawning helper INR on "
                    << candidate.ToString();
    return;
  }

  if (action == PendingAction::kDelegate) {
    std::string vspace = PickSpaceToDelegate();
    if (vspace.empty()) {
      return;
    }
    SpawnRequest spawn;
    spawn.requester = self_;
    spawn.vspaces = {vspace};
    send_(candidate, Envelope{MessageBody(std::move(spawn))});

    // Hand over the space: announce the delegation, transfer the name state,
    // then stop routing it ourselves (the DSR registration refresh drops it).
    send_(candidate, Envelope{MessageBody(DelegateVspace{self_, vspace})});
    discovery_->SendVspaceStateTo(candidate, vspace);
    vspaces_->RemoveSpace(vspace);
    ++delegations_;
    metrics_->Increment("lb.delegations");
    INS_LOG(kDebug) << self_.ToString() << ": delegated vspace '" << vspace << "' to "
                    << candidate.ToString();
  }
}

// --- SpawnListener -----------------------------------------------------------

SpawnListener::SpawnListener(Executor* executor, Transport* transport, NodeAddress dsr,
                             Factory factory)
    : executor_(executor), transport_(transport), dsr_(dsr), factory_(std::move(factory)) {
  transport_->SetReceiveHandler(
      [this](const NodeAddress& src, const Bytes& data) { OnMessage(src, data); });
  RegisterWithDsr();
}

SpawnListener::~SpawnListener() {
  executor_->Cancel(register_task_);
  if (!consumed_) {
    transport_->SetReceiveHandler(nullptr);
  }
}

void SpawnListener::RegisterWithDsr() {
  DsrRegister reg;
  reg.inr = transport_->local_address();
  reg.active = false;  // candidate only
  reg.lifetime_s = 60;
  transport_->Send(dsr_, Encode(reg));
  register_task_ = executor_->ScheduleAfter(Seconds(20), [this] { RegisterWithDsr(); });
}

void SpawnListener::OnMessage(const NodeAddress& src, const Bytes& data) {
  auto env = DecodeMessage(data);
  if (!env.ok()) {
    return;
  }
  if (const auto* ping = std::get_if<Ping>(&env->body)) {
    transport_->Send(src, Encode(PingAgent::PongFor(*ping)));
    return;
  }
  if (const auto* spawn = std::get_if<SpawnRequest>(&env->body)) {
    if (consumed_) {
      return;
    }
    consumed_ = true;
    executor_->Cancel(register_task_);
    // The factory installs the spawned resolver's own receive handler.
    factory_(*spawn);
    return;
  }
}

}  // namespace ins
