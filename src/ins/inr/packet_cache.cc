#include "ins/inr/packet_cache.h"

namespace ins {

void PacketCache::Insert(const std::string& name_key, Bytes payload, TimePoint expires) {
  if (capacity_ == 0) {
    return;
  }
  auto it = entries_.find(name_key);
  if (it != entries_.end()) {
    lru_.erase(it->second);
    entries_.erase(it);
  }
  lru_.push_front(Entry{name_key, std::move(payload), expires});
  entries_[name_key] = lru_.begin();
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back().name_key);
    lru_.pop_back();
  }
}

const PacketCache::Entry* PacketCache::Lookup(const std::string& name_key, TimePoint now) {
  auto it = entries_.find(name_key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  if (it->second->expires < now) {
    lru_.erase(it->second);
    entries_.erase(it);
    ++misses_;
    return nullptr;
  }
  // Refresh recency.
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
  ++hits_;
  return &*it->second;
}

}  // namespace ins
