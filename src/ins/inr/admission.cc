#include "ins/inr/admission.h"

#include <algorithm>
#include <string>
#include <utility>

namespace ins {

namespace {

const char* kAdmittedCounter[3] = {"admission.admitted.class0", "admission.admitted.class1",
                                   "admission.admitted.class2"};
const char* kProcessedCounter[3] = {"admission.processed.class0",
                                    "admission.processed.class1",
                                    "admission.processed.class2"};
const char* kShedCounter[3] = {"forwarding.drop.shed_class0", "forwarding.drop.shed_class1",
                               "forwarding.drop.shed_class2"};
// Trace detail of a shed drop: the same suffix its counter carries, so a
// journey's kDropped event names the forwarding.drop.* family member.
const char* kShedReason[3] = {"shed_class0", "shed_class1", "shed_class2"};

}  // namespace

int ClassifyMessage(const Envelope& env) {
  return std::visit(
      [](const auto& body) -> int {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, Packet>) {
          return body.early_binding ? 1 : 2;
        } else if constexpr (std::is_same_v<T, DiscoveryRequest>) {
          return 1;
        } else {
          // Everything else keeps the namespace and the overlay alive:
          // service advertisements, INR-to-INR name updates, keepalives/
          // pings, peering, and the whole DSR protocol.
          return 0;
        }
      },
      env.body);
}

AdmissionController::AdmissionController(Executor* executor, MetricsRegistry* metrics,
                                         AdmissionConfig config, DispatchFn dispatch,
                                         TraceRing* trace, NodeAddress self)
    : executor_(executor),
      metrics_(metrics),
      config_(config),
      dispatch_(std::move(dispatch)),
      trace_(trace),
      self_(self),
      shed_queue_full_(metrics->RegisterCounter("admission.shed_queue_full")),
      shed_lag_(metrics->RegisterCounter("admission.shed_lag")),
      lag_gauge_(metrics->RegisterGauge("admission.lag_us")),
      queued_us_(metrics->RegisterHistogram("admission.queued_us")) {
  for (size_t c = 0; c < 3; ++c) {
    admitted_[c] = metrics->RegisterCounter(kAdmittedCounter[c]);
    processed_[c] = metrics->RegisterCounter(kProcessedCounter[c]);
    shed_[c] = metrics->RegisterCounter(kShedCounter[c]);
  }
}

AdmissionController::~AdmissionController() { Clear(); }

Duration AdmissionController::EstimatedWait() const {
  // What a message admitted now would wait: the residual service time of the
  // in-flight message plus one full service time per message already queued.
  size_t queued = 0;
  for (const auto& q : queues_) {
    queued += q.size();
  }
  Duration wait = config_.processing_cost * static_cast<int64_t>(queued);
  const TimePoint now = executor_->Now();
  if (busy_until_ > now) {
    wait += busy_until_ - now;
  }
  return wait;
}

Duration AdmissionController::LoadSignal() const { return std::max(lag_ewma_, EstimatedWait()); }

void AdmissionController::Trace(const Envelope& env, TraceEventKind kind, const char* detail,
                                uint64_t value) {
  if (trace_ == nullptr) {
    return;
  }
  const Packet* packet = std::get_if<Packet>(&env.body);
  if (packet == nullptr || !packet->traced()) {
    return;
  }
  TraceEvent ev;
  ev.trace_id = packet->trace_id;
  ev.at = executor_->Now();
  ev.node = self_;
  ev.kind = kind;
  ev.detail = detail;
  ev.value = value;
  trace_->Record(ev);
}

void AdmissionController::Shed(int cls, const char* signal, const Envelope& env) {
  shed_[cls].Increment();
  (*signal == 'q' ? shed_queue_full_ : shed_lag_).Increment();
  Trace(env, TraceEventKind::kDropped, kShedReason[cls]);
  if (!shedding_) {
    shedding_ = true;
    if (flight_ != nullptr) {
      flight_->Record(executor_->Now(), FlightEventKind::kShedOnset,
                      FlightSeverity::kWarning, kShedReason[cls], {},
                      static_cast<uint64_t>(std::max<int64_t>(LoadSignal().count(), 0)));
    }
  }
}

void AdmissionController::Admit(const NodeAddress& src, Envelope env) {
  if (!config_.enabled) {
    Trace(env, TraceEventKind::kAdmitted);
    dispatch_(src, env, Duration{0});
    return;
  }
  const int cls = ClassifyMessage(env);
  const size_t idx = static_cast<size_t>(cls);

  if (queues_[idx].size() >= config_.queue_capacity[idx]) {
    Shed(cls, "queue_full", env);
    return;
  }
  // Load shedding, lowest class first. Class 0 is exempt: soft-state
  // refreshes must land however busy the resolver is, or the name tree
  // expires under the very overload it is meant to survive.
  const Duration load = LoadSignal();
  if (cls == 2 && load >= config_.shed_class2_lag) {
    Shed(cls, "lag", env);
    return;
  }
  if (cls == 1 && load >= config_.shed_class1_lag) {
    Shed(cls, "lag", env);
    return;
  }

  if (shedding_ && cls > 0) {
    // A sheddable message made it through: the overload episode is over.
    shedding_ = false;
    if (flight_ != nullptr) {
      flight_->Record(executor_->Now(), FlightEventKind::kShedClear, FlightSeverity::kInfo,
                      "", {}, static_cast<uint64_t>(std::max<int64_t>(load.count(), 0)));
    }
  }
  admitted_[idx].Increment();
  Trace(env, TraceEventKind::kQueued, "", queues_[idx].size() + 1);
  queues_[idx].push_back(Pending{src, std::move(env), executor_->Now()});
  ScheduleDrain();
}

void AdmissionController::ScheduleDrain() {
  if (drain_task_ != kInvalidTaskId) {
    return;
  }
  // The modeled server picks up the next message as soon as it is free.
  const TimePoint when = std::max(busy_until_, executor_->Now());
  drain_task_ = executor_->ScheduleAt(when, [this] {
    drain_task_ = kInvalidTaskId;
    DrainOne();
  });
}

void AdmissionController::DrainOne() {
  // Strict priority: always the highest non-empty class.
  std::deque<Pending>* queue = nullptr;
  size_t idx = 0;
  for (size_t c = 0; c < queues_.size(); ++c) {
    if (!queues_[c].empty()) {
      queue = &queues_[c];
      idx = c;
      break;
    }
  }
  if (queue == nullptr) {
    return;
  }
  Pending msg = std::move(queue->front());
  queue->pop_front();

  const TimePoint now = executor_->Now();
  const Duration queued = now - msg.enqueued;
  const double alpha = config_.lag_ewma_alpha;
  lag_ewma_ = Duration(static_cast<int64_t>(alpha * static_cast<double>(queued.count()) +
                                            (1.0 - alpha) * static_cast<double>(lag_ewma_.count())));
  lag_gauge_.Set(lag_ewma_.count());
  processed_[idx].Increment();
  queued_us_.Record(static_cast<uint64_t>(std::max<int64_t>(queued.count(), 0)));
  Trace(msg.env, TraceEventKind::kAdmitted, "",
        static_cast<uint64_t>(std::max<int64_t>(queued.count(), 0)));

  busy_until_ = now + config_.processing_cost;
  dispatch_(msg.src, msg.env, queued);

  for (const auto& q : queues_) {
    if (!q.empty()) {
      ScheduleDrain();
      break;
    }
  }
}

void AdmissionController::Clear() {
  for (auto& q : queues_) {
    q.clear();
  }
  if (drain_task_ != kInvalidTaskId) {
    executor_->Cancel(drain_task_);
    drain_task_ = kInvalidTaskId;
  }
  busy_until_ = TimePoint{};
  lag_ewma_ = Duration{0};
  shedding_ = false;
}

}  // namespace ins
