// Journaled delta replication with anti-entropy (the robustness layer on top
// of the soft-state name-discovery protocol).
//
// Every resolver keeps a per-vspace change journal (nametree/journal.h). The
// ReplicationAgent exchanges (vspace, serial) digests with overlay neighbors
// on keepalive cadence and repairs divergence with O(changes) transfers:
//
//   * digest equal     -> the receiver's replica of the sender is current;
//                         the digest doubles as a liveness lease and the
//                         receiver re-arms the expiry of every record it
//                         routes via the sender (no per-record refresh).
//   * digest ahead     -> the receiver requests a delta stream
//                         (JournalDeltaRequest) and applies the journal
//                         entries through the normal distance-vector rules.
//   * serial fell off  -> the sender answers with a full snapshot transfer
//     the journal ring    (the AXFR fallback): replace-all semantics for
//                         records routed via the sender.
//   * serial regressed -> the sender restarted with a fresh journal; the
//                         receiver resets its cursor and takes a snapshot.
//
// Transfers are chunked over UDP with consecutive sequence numbers, a
// deadline, and bounded retries; a seq gap or timeout aborts the transfer
// and the next digest round restarts it. With replication enabled the
// periodic full re-announcement of NameDiscovery is suppressed — digests are
// O(vspaces) per keepalive instead of O(names) per refresh period, which is
// where the refresh-storm bytes go.
//
// Everything is feature-flagged: ReplicationConfig::enabled defaults to
// false and the seed soft-state path is untouched.

#ifndef INS_INR_REPLICATION_H_
#define INS_INR_REPLICATION_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ins/common/executor.h"
#include "ins/common/flight_recorder.h"
#include "ins/common/metrics.h"
#include "ins/inr/name_discovery.h"
#include "ins/inr/vspace.h"
#include "ins/overlay/topology.h"
#include "ins/wire/messages.h"

namespace ins {

struct ReplicationConfig {
  // Master switch. Off (the seed default): no journaling, no digests, the
  // soft-state refresh path is exactly the seed's.
  bool enabled = false;
  // Ring capacity of each per-vspace journal. A peer that falls further
  // behind than this takes a snapshot instead of a delta.
  size_t journal_capacity = 1024;
  // Anti-entropy cadence; aligned with the overlay keepalive interval so a
  // healed partition converges within one keepalive round.
  Duration digest_interval = Seconds(5);
  // Transfer state machine: a request unanswered past this deadline is
  // retried, up to max_transfer_retries, then aborted (the next digest round
  // starts over).
  Duration transfer_timeout = Seconds(2);
  int max_transfer_retries = 3;
  // Entries per JournalDeltaResponse chunk (mirrors DiscoveryConfig's
  // max_entries_per_update datagram bound).
  size_t max_entries_per_response = 64;
  // Lease granted to replicated records by a current digest. Must exceed the
  // overlay's failure-detection window (missed_keepalives * keepalive
  // interval): any partition long enough to expire replicas also kills the
  // edge, whose repair does a full resynchronization — so silent divergence
  // ("serials equal but my replica lapsed") cannot happen.
  uint32_t replica_lifetime_s = 45;

  // --- Replica sets (vspace availability) ------------------------------------
  // Target replica-set size per routed vspace. 1 (the seed default) keeps the
  // paper's one-INR-per-vspace model; >= 2 turns on replica mode: the
  // primary tops sets up via DSR candidates + ReplicaInvite, digests also
  // flow to (possibly non-neighbor) set members, and digest silence drives
  // per-vspace failover.
  int replica_k = 1;
  // A set member silent for this many digest intervals is declared dead:
  // routes steer away from it, the DSR is told (DsrDeadInrReport), and its
  // records are retained — not purged — so the survivors keep serving them.
  int replica_missed_digests = 2;
  // TTL of the forwarder-side replica-set cache in replica mode (the seed
  // caches the single owner forever). Bounds how long a forwarder keeps
  // tunneling toward a dead primary before re-asking the DSR.
  Duration owner_cache_ttl = Seconds(5);
};

class ReplicationAgent {
 public:
  ReplicationAgent(Executor* executor, SendFn send, NodeAddress self, NodeAddress dsr,
                   VspaceManager* vspaces, TopologyManager* topology,
                   NameDiscovery* discovery, MetricsRegistry* metrics,
                   ReplicationConfig config);
  ~ReplicationAgent();

  void Start();
  void Stop();

  void HandleDigest(const NodeAddress& src, const JournalDigest& digest);
  void HandleDeltaRequest(const NodeAddress& src, const JournalDeltaRequest& req);
  void HandleDeltaResponse(const NodeAddress& src, const JournalDeltaResponse& resp);

  // When set, replica deaths/pardons and snapshot fallbacks land in the
  // node's flight recorder.
  void AttachFlightRecorder(FlightRecorder* flight) { flight_ = flight; }

  // Drops every per-(peer, vspace) cursor for `peer` (overlay edge died).
  // The state its records carried is purged by NameDiscovery::PurgeRoutesVia;
  // when the edge re-forms, the zeroed cursor forces a full resync. The
  // replication.peers / replication.peer_spaces gauges drop with the cursors
  // — eagerly, not on the next digest cadence.
  void ForgetPeer(const NodeAddress& peer);

  // --- Replica mode (config.enabled && replica_k >= 2) -----------------------

  bool replica_mode() const { return config_.enabled && config_.replica_k >= 2; }

  // Current DSR view of `vspace`'s replica set (from the periodic
  // DsrReplicaSetResponse). Non-self members become replica peers: digests
  // flow to them even when they are not overlay neighbors, and their digest
  // silence is this resolver's per-vspace failure detector.
  void NoteReplicaSet(const std::string& vspace, const std::vector<NodeAddress>& members);

  // This resolver stopped routing `vspace` (delegated it away, or
  // relinquished an invite-joined space whose set healed full without us):
  // drop the membership view and the failure-detector state it anchored, so
  // the ex-members are no longer digested or declared dead from here.
  void DropSpace(const std::string& vspace);

  // True when `addr` is a member of any routed vspace's replica set. Replica
  // peers exchange digests without being overlay neighbors, so tree-edge
  // bookkeeping (PeerClose on unknown senders) must not apply to them.
  bool IsReplicaPeer(const NodeAddress& addr) const;

  // Overlay keepalive failure for `peer`. Returns the vspaces whose records
  // via `peer` must be RETAINED (the vspaces `peer` co-replicated with us:
  // the survivors keep serving its names — that is the whole point of the
  // replica set); the caller purges only routes outside the returned set.
  // Also runs the standard death handling (dead report, route steering).
  std::set<std::string> NotePeerDown(const NodeAddress& peer);

  // The journal serial of `peer`'s `vspace` this resolver has fully applied.
  uint64_t AppliedSerial(const NodeAddress& peer, const std::string& vspace) const;
  // True while any (peer, vspace) transfer is awaiting chunks.
  bool TransferInFlight() const;

  const ReplicationConfig& config() const { return config_; }

 private:
  struct PeerSpace {
    uint64_t applied_serial = 0;
    // Transfer state machine (one outstanding transfer per (peer, vspace)).
    bool awaiting = false;
    bool full = false;  // requested (or fell back to) a snapshot
    uint32_t next_seq = 0;
    TimePoint deadline{0};
    int retries = 0;
    TimePoint behind_since{0};  // for the catch-up latency histogram
    // Announcers named by the snapshot chunks so far; on the last chunk,
    // records via the peer that are NOT in here are purged (replace-all).
    std::set<AnnouncerId> snapshot_seen;
  };

  void DigestTick();
  void RetryTick();
  void SendDigests();
  // Declares dead every replica peer silent past replica_missed_digests
  // digest intervals.
  void CheckReplicaLiveness();
  // Drops `peer` from every set, steers routes away, reports to the DSR.
  void DeclareReplicaDead(const NodeAddress& peer);
  void UpdatePeerGauges();
  void StartTransfer(const NodeAddress& peer, const std::string& vspace, PeerSpace& ps,
                     bool full);
  void SendRequest(const NodeAddress& peer, const std::string& vspace, const PeerSpace& ps);
  void AbortTransfer(PeerSpace& ps);
  // Sends `entries` to `peer` as a chunked transfer with consecutive seqs.
  void SendChunked(const NodeAddress& peer, const std::string& vspace, bool snapshot,
                   uint64_t to_serial, std::vector<JournalDeltaResponse::Entry> entries);
  // Re-arms the soft-state expiry of every record routed via `peer` in
  // `vspace` to now + replica_lifetime_s (the digest liveness lease).
  void RefreshReplicasVia(const NodeAddress& peer, const std::string& vspace);
  // Snapshot replace-all: removes records routed via `peer` whose announcer
  // the snapshot did not mention.
  void PurgeUnseenVia(const NodeAddress& peer, const std::string& vspace,
                      const std::set<AnnouncerId>& seen);
  uint32_t RemainingLifetimeS(TimePoint expires) const;

  Executor* executor_;
  SendFn send_;
  NodeAddress self_;
  NodeAddress dsr_;
  VspaceManager* vspaces_;
  TopologyManager* topology_;
  NameDiscovery* discovery_;
  MetricsRegistry* metrics_;
  FlightRecorder* flight_ = nullptr;
  ReplicationConfig config_;

  bool running_ = false;
  TaskId digest_task_ = kInvalidTaskId;
  TaskId retry_task_ = kInvalidTaskId;
  std::map<std::pair<NodeAddress, std::string>, PeerSpace> peers_;

  // Replica mode: per routed vspace, the non-self set members (DSR join
  // order), and per member the last time a digest proved it alive (seeded
  // with the membership-learn time so a member that never digests at all
  // still trips the detector).
  std::map<std::string, std::vector<NodeAddress>> replica_members_;
  std::map<NodeAddress, TimePoint> replica_last_heard_;
  // Spaces a declared-dead peer co-replicated, remembered past its removal
  // from replica_members_: the overlay keepalive detector fires long after
  // the digest detector, and its purge must still spare these. Cleared when
  // the peer digests again (it came back).
  std::map<NodeAddress, std::set<std::string>> dead_peer_spaces_;
};

}  // namespace ins

#endif  // INS_INR_REPLICATION_H_
