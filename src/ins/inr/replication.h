// Journaled delta replication with anti-entropy (the robustness layer on top
// of the soft-state name-discovery protocol).
//
// Every resolver keeps a per-vspace change journal (nametree/journal.h). The
// ReplicationAgent exchanges (vspace, serial) digests with overlay neighbors
// on keepalive cadence and repairs divergence with O(changes) transfers:
//
//   * digest equal     -> the receiver's replica of the sender is current;
//                         the digest doubles as a liveness lease and the
//                         receiver re-arms the expiry of every record it
//                         routes via the sender (no per-record refresh).
//   * digest ahead     -> the receiver requests a delta stream
//                         (JournalDeltaRequest) and applies the journal
//                         entries through the normal distance-vector rules.
//   * serial fell off  -> the sender answers with a full snapshot transfer
//     the journal ring    (the AXFR fallback): replace-all semantics for
//                         records routed via the sender.
//   * serial regressed -> the sender restarted with a fresh journal; the
//                         receiver resets its cursor and takes a snapshot.
//
// Transfers are chunked over UDP with consecutive sequence numbers, a
// deadline, and bounded retries; a seq gap or timeout aborts the transfer
// and the next digest round restarts it. With replication enabled the
// periodic full re-announcement of NameDiscovery is suppressed — digests are
// O(vspaces) per keepalive instead of O(names) per refresh period, which is
// where the refresh-storm bytes go.
//
// Everything is feature-flagged: ReplicationConfig::enabled defaults to
// false and the seed soft-state path is untouched.

#ifndef INS_INR_REPLICATION_H_
#define INS_INR_REPLICATION_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ins/common/executor.h"
#include "ins/common/metrics.h"
#include "ins/inr/name_discovery.h"
#include "ins/inr/vspace.h"
#include "ins/overlay/topology.h"
#include "ins/wire/messages.h"

namespace ins {

struct ReplicationConfig {
  // Master switch. Off (the seed default): no journaling, no digests, the
  // soft-state refresh path is exactly the seed's.
  bool enabled = false;
  // Ring capacity of each per-vspace journal. A peer that falls further
  // behind than this takes a snapshot instead of a delta.
  size_t journal_capacity = 1024;
  // Anti-entropy cadence; aligned with the overlay keepalive interval so a
  // healed partition converges within one keepalive round.
  Duration digest_interval = Seconds(5);
  // Transfer state machine: a request unanswered past this deadline is
  // retried, up to max_transfer_retries, then aborted (the next digest round
  // starts over).
  Duration transfer_timeout = Seconds(2);
  int max_transfer_retries = 3;
  // Entries per JournalDeltaResponse chunk (mirrors DiscoveryConfig's
  // max_entries_per_update datagram bound).
  size_t max_entries_per_response = 64;
  // Lease granted to replicated records by a current digest. Must exceed the
  // overlay's failure-detection window (missed_keepalives * keepalive
  // interval): any partition long enough to expire replicas also kills the
  // edge, whose repair does a full resynchronization — so silent divergence
  // ("serials equal but my replica lapsed") cannot happen.
  uint32_t replica_lifetime_s = 45;
};

class ReplicationAgent {
 public:
  ReplicationAgent(Executor* executor, SendFn send, NodeAddress self,
                   VspaceManager* vspaces, TopologyManager* topology,
                   NameDiscovery* discovery, MetricsRegistry* metrics,
                   ReplicationConfig config);
  ~ReplicationAgent();

  void Start();
  void Stop();

  void HandleDigest(const NodeAddress& src, const JournalDigest& digest);
  void HandleDeltaRequest(const NodeAddress& src, const JournalDeltaRequest& req);
  void HandleDeltaResponse(const NodeAddress& src, const JournalDeltaResponse& resp);

  // Drops every per-(peer, vspace) cursor for `peer` (overlay edge died).
  // The state its records carried is purged by NameDiscovery::PurgeRoutesVia;
  // when the edge re-forms, the zeroed cursor forces a full resync.
  void ForgetPeer(const NodeAddress& peer);

  // The journal serial of `peer`'s `vspace` this resolver has fully applied.
  uint64_t AppliedSerial(const NodeAddress& peer, const std::string& vspace) const;
  // True while any (peer, vspace) transfer is awaiting chunks.
  bool TransferInFlight() const;

  const ReplicationConfig& config() const { return config_; }

 private:
  struct PeerSpace {
    uint64_t applied_serial = 0;
    // Transfer state machine (one outstanding transfer per (peer, vspace)).
    bool awaiting = false;
    bool full = false;  // requested (or fell back to) a snapshot
    uint32_t next_seq = 0;
    TimePoint deadline{0};
    int retries = 0;
    TimePoint behind_since{0};  // for the catch-up latency histogram
    // Announcers named by the snapshot chunks so far; on the last chunk,
    // records via the peer that are NOT in here are purged (replace-all).
    std::set<AnnouncerId> snapshot_seen;
  };

  void DigestTick();
  void RetryTick();
  void SendDigests();
  void StartTransfer(const NodeAddress& peer, const std::string& vspace, PeerSpace& ps,
                     bool full);
  void SendRequest(const NodeAddress& peer, const std::string& vspace, const PeerSpace& ps);
  void AbortTransfer(PeerSpace& ps);
  // Sends `entries` to `peer` as a chunked transfer with consecutive seqs.
  void SendChunked(const NodeAddress& peer, const std::string& vspace, bool snapshot,
                   uint64_t to_serial, std::vector<JournalDeltaResponse::Entry> entries);
  // Re-arms the soft-state expiry of every record routed via `peer` in
  // `vspace` to now + replica_lifetime_s (the digest liveness lease).
  void RefreshReplicasVia(const NodeAddress& peer, const std::string& vspace);
  // Snapshot replace-all: removes records routed via `peer` whose announcer
  // the snapshot did not mention.
  void PurgeUnseenVia(const NodeAddress& peer, const std::string& vspace,
                      const std::set<AnnouncerId>& seen);
  uint32_t RemainingLifetimeS(TimePoint expires) const;

  Executor* executor_;
  SendFn send_;
  NodeAddress self_;
  VspaceManager* vspaces_;
  TopologyManager* topology_;
  NameDiscovery* discovery_;
  MetricsRegistry* metrics_;
  ReplicationConfig config_;

  bool running_ = false;
  TaskId digest_task_ = kInvalidTaskId;
  TaskId retry_task_ = kInvalidTaskId;
  std::map<std::pair<NodeAddress, std::string>, PeerSpace> peers_;
};

}  // namespace ins

#endif  // INS_INR_REPLICATION_H_
