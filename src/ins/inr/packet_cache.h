// Application-independent INR-side data caching (paper §3.2).
//
// Intentional names double as cache handles: a packet whose header carries a
// non-zero cache lifetime is cached at each INR it traverses under its
// *source* name (the name describing the data, e.g. the camera that produced
// an image). A later request addressed to that name with the
// answer-from-cache flag set is answered from the cache instead of being
// forwarded to the origin. Entries are LRU-evicted and expire by lifetime.

#ifndef INS_INR_PACKET_CACHE_H_
#define INS_INR_PACKET_CACHE_H_

#include <list>
#include <string>
#include <unordered_map>

#include "ins/common/bytes.h"
#include "ins/common/clock.h"

namespace ins {

class PacketCache {
 public:
  explicit PacketCache(size_t capacity) : capacity_(capacity) {}

  struct Entry {
    std::string name_key;  // canonical text of the cached object's name
    Bytes payload;
    TimePoint expires;
  };

  // Inserts/overwrites the object named `name_key` (canonical text).
  void Insert(const std::string& name_key, Bytes payload, TimePoint expires);

  // Returns the live entry for `name_key`, refreshing its LRU position, or
  // nullptr (expired entries are removed on the spot).
  const Entry* Lookup(const std::string& name_key, TimePoint now);

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace ins

#endif  // INS_INR_PACKET_CACHE_H_
