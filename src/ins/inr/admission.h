// Prioritized admission control for the INR ingress path.
//
// The paper's resolver is a soft-state system: its name tree and spanning
// tree survive only as long as advertisements, name updates, and keepalives
// keep flowing. A FIFO intake lets a burst of late-binding data packets starve
// exactly that control traffic — the resolver then "fails" not from any fault
// but from its own success at attracting load. The admission controller
// replaces FIFO with three bounded, strictly-prioritized classes:
//
//   class 0  overlay/DSR control, advertisements, keepalives, name updates
//            (never shed: soft state must not expire because we are busy)
//   class 1  discovery queries and early-binding lookups
//   class 2  late-binding data packets
//
// Messages drain highest class first at a modeled per-message processing
// cost (the discrete-event simulator's stand-in for CPU time; the paper's
// measured resolution cost motivates the default). The controller sheds at
// admission, lowest class first, when either signal trips:
//   * the class queue is full (bounded memory), or
//   * the load signal — max(smoothed drain lag EWMA, instantaneous estimated
//     wait) — crosses the class's shed threshold. Class 2 sheds strictly
//     before class 1; class 0 is only ever dropped by queue overflow, whose
//     capacity is sized so that never happens in practice.
//
// Time spent queued is charged against a data packet's deadline budget at
// dispatch, so a request the client has already given up on is dropped
// instead of resolved: sheds and deadline kills surface under the uniform
// forwarding.drop.* metric family.
//
// Disabled (the default), Admit() dispatches inline and the INR behaves
// exactly like the seed.

#ifndef INS_INR_ADMISSION_H_
#define INS_INR_ADMISSION_H_

#include <array>
#include <cstddef>
#include <deque>
#include <functional>

#include "ins/common/executor.h"
#include "ins/common/flight_recorder.h"
#include "ins/common/metrics.h"
#include "ins/common/node_address.h"
#include "ins/common/trace.h"
#include "ins/wire/messages.h"

namespace ins {

struct AdmissionConfig {
  bool enabled = false;
  // Modeled service time per message: the drain rate is 1/processing_cost.
  Duration processing_cost = Microseconds(200);
  // Per-class queue bounds. Class 0 is sized to absorb every keepalive,
  // advertisement and routing update a full refresh period can produce.
  std::array<size_t, 3> queue_capacity = {4096, 1024, 1024};
  // Load-signal thresholds; class 2 trips first by a wide margin.
  Duration shed_class2_lag = Milliseconds(50);
  Duration shed_class1_lag = Milliseconds(250);
  // Smoothing factor for the drain-lag EWMA.
  double lag_ewma_alpha = 0.2;
};

// Returns the priority class (0 highest) of a decoded envelope.
int ClassifyMessage(const Envelope& env);

class AdmissionController {
 public:
  // `dispatch` receives the admitted message plus the time it spent queued
  // (zero when admission is disabled or the server was idle).
  using DispatchFn =
      std::function<void(const NodeAddress& src, const Envelope& env, Duration queued)>;

  // `trace`/`self` are optional (standalone tests construct without them):
  // when set, sampled data packets leave kQueued/kAdmitted/kDropped events in
  // the ring as they cross the admission boundary.
  AdmissionController(Executor* executor, MetricsRegistry* metrics, AdmissionConfig config,
                      DispatchFn dispatch, TraceRing* trace = nullptr, NodeAddress self = {});
  ~AdmissionController();

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Admits, queues, or sheds one decoded message. Inline dispatch when
  // disabled.
  void Admit(const NodeAddress& src, Envelope env);

  // Drops everything queued and cancels the drain timer (stop/crash path).
  void Clear();

  // When set, shedding edges (first shed of an overload episode, first
  // successful sheddable admit after it) land in the node's flight recorder.
  void AttachFlightRecorder(FlightRecorder* flight) { flight_ = flight; }

  // The current load signal: max(smoothed drain lag, estimated wait of a
  // message admitted right now). Exposed for tests and DebugString.
  Duration LoadSignal() const;

  size_t QueueDepth(int cls) const { return queues_[static_cast<size_t>(cls)].size(); }

 private:
  struct Pending {
    NodeAddress src;
    Envelope env;
    TimePoint enqueued;
  };

  void ScheduleDrain();
  void DrainOne();
  Duration EstimatedWait() const;
  void Shed(int cls, const char* signal, const Envelope& env);
  // Records a trace event when `env` carries a sampled data packet.
  void Trace(const Envelope& env, TraceEventKind kind, const char* detail = "",
             uint64_t value = 0);

  Executor* executor_;
  MetricsRegistry* metrics_;
  AdmissionConfig config_;
  DispatchFn dispatch_;
  TraceRing* trace_;
  NodeAddress self_;
  FlightRecorder* flight_ = nullptr;
  // True between a shed and the next successful sheddable (class>0) admit;
  // the edges of this bit are the recorded events, not every shed.
  bool shedding_ = false;

  // Pre-registered handles: admission sits on the ingress path of every
  // message, so its accounting must not do string-map lookups per packet.
  CounterHandle admitted_[3];
  CounterHandle processed_[3];
  CounterHandle shed_[3];
  CounterHandle shed_queue_full_;
  CounterHandle shed_lag_;
  GaugeHandle lag_gauge_;
  HistogramHandle queued_us_;

  std::array<std::deque<Pending>, 3> queues_;
  TaskId drain_task_ = kInvalidTaskId;
  // The modeled server is busy until this instant; the next drain runs then.
  TimePoint busy_until_{};
  Duration lag_ewma_{0};
};

}  // namespace ins

#endif  // INS_INR_ADMISSION_H_
