#include "ins/inr/forwarding.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "ins/common/logging.h"
#include "ins/name/parser.h"

namespace ins {

Bytes EncodeEarlyBindingPayload(uint64_t request_id, const NodeAddress& reply_to) {
  ByteWriter w;
  w.WriteU64(request_id);
  w.WriteU32(reply_to.ip);
  w.WriteU16(reply_to.port);
  return std::move(w).TakeBytes();
}

Result<std::pair<uint64_t, NodeAddress>> DecodeEarlyBindingPayload(const Bytes& payload) {
  ByteReader r(payload);
  uint64_t id = 0;
  NodeAddress addr;
  INS_ASSIGN_OR_RETURN(id, r.ReadU64());
  INS_ASSIGN_OR_RETURN(addr.ip, r.ReadU32());
  INS_ASSIGN_OR_RETURN(addr.port, r.ReadU16());
  return std::make_pair(id, addr);
}

ForwardingAgent::ForwardingAgent(Executor* executor, SendFn send, NodeAddress self,
                                 VspaceManager* vspaces, TopologyManager* topology,
                                 PacketCache* cache, MetricsRegistry* metrics,
                                 TraceRing* trace)
    : executor_(executor),
      send_(std::move(send)),
      self_(self),
      vspaces_(vspaces),
      topology_(topology),
      cache_(cache),
      metrics_(metrics),
      trace_(trace),
      packets_(metrics->RegisterCounter("forwarding.packets")),
      lookups_(metrics->RegisterCounter("forwarding.lookups")),
      anycasts_(metrics->RegisterCounter("forwarding.anycast")),
      multicasts_(metrics->RegisterCounter("forwarding.multicast")),
      early_bindings_(metrics->RegisterCounter("forwarding.early_binding")),
      local_deliveries_(metrics->RegisterCounter("forwarding.local_deliveries")),
      tunneled_(metrics->RegisterCounter("forwarding.tunneled")),
      cross_vspace_(metrics->RegisterCounter("forwarding.cross_vspace")),
      cache_answers_(metrics->RegisterCounter("forwarding.cache_answers")),
      cache_inserts_(metrics->RegisterCounter("forwarding.cache_inserts")),
      dead_replica_reroutes_(metrics->RegisterCounter("availability.dead_replica_reroutes")),
      lookup_us_(metrics->RegisterHistogram("forwarding.lookup_us")) {
  for (size_t i = 0; i < kForwardingDropReasonCount; ++i) {
    drops_[i] = metrics->RegisterCounter(std::string("forwarding.drop.") +
                                         kForwardingDropReasonNames[i]);
  }
}

void ForwardingAgent::Trace(const Packet& packet, TraceEventKind kind, const char* detail,
                            NodeAddress peer, uint64_t value) {
  if (!packet.traced() || trace_ == nullptr) {
    return;
  }
  TraceEvent ev;
  ev.trace_id = packet.trace_id;
  ev.at = executor_->Now();
  ev.node = self_;
  ev.kind = kind;
  ev.detail = detail;
  ev.peer = peer;
  ev.value = value;
  trace_->Record(ev);
}

void ForwardingAgent::NoteDrop(const Packet& packet, ForwardingDropReason reason) {
  drops_[static_cast<size_t>(reason)].Increment();
  Trace(packet, TraceEventKind::kDropped, ForwardingDropReasonName(reason));
}

void ForwardingAgent::HandleData(const NodeAddress& src, const Packet& packet) {
  packets_.Increment();
  if (packet.hop_limit == 0) {
    NoteDrop(packet, ForwardingDropReason::kHopLimit);
    return;
  }
  // Decode the destination once per packet; the memoizing decoder makes the
  // steady-state cost of a repeated destination one probe, not a re-parse.
  auto dst = decoder_.Decode(packet.destination_name);
  if (!dst.ok()) {
    NoteDrop(packet, ForwardingDropReason::kBadDestination);
    INS_LOG(kDebug) << "undeliverable packet: " << dst.status();
    return;
  }
  if (packet.answer_from_cache && TryAnswerFromCache(packet, **dst)) {
    return;
  }
  ResolveAndForward(src, packet, **dst);
}

void ForwardingAgent::ResolveAndForward(const NodeAddress& src, const Packet& packet,
                                        const NameSpecifier& dst) {
  const std::string vspace = VspaceManager::VspaceOf(dst);
  const ShardedNameTree& store = vspaces_->store();
  if (!store.Routes(vspace)) {
    ForwardToVspaceOwner(packet, vspace);
    return;
  }

  lookups_.Increment();
  const auto lookup_start = std::chrono::steady_clock::now();

  // Resolve against every shard of the space — in parallel on the worker
  // pool when one is configured. The scan callback does pure per-shard
  // reduction into its own slot (no sends, no metrics: those are not
  // thread-safe and happen after the merge, on this thread).
  const bool early_binding = packet.early_binding;
  const bool deliver_all = packet.deliver_all;
  const bool from_neighbor_inr = topology_->IsNeighbor(src);
  std::vector<ShardPartial> parts(store.ShardCountOf(vspace));
  store.ForEachShardMatch(
      vspace, dst,
      [&](size_t shard, const NameTree& tree, const std::vector<const NameRecord*>& matches) {
        (void)tree;
        ShardPartial& p = parts[shard];
        p.matches = matches.size();
        if (early_binding) {
          p.records.reserve(matches.size());
          for (const NameRecord* rec : matches) {
            p.records.push_back(rec->Detached());
          }
          return;
        }
        if (deliver_all) {
          for (const NameRecord* rec : matches) {
            if (rec->route.IsLocal()) {
              p.locals.push_back(rec->Detached());
            } else if (vspaces_->IsDeadReplica(rec->route.next_hop_inr)) {
              // Survivor promotion: the next hop is a dead replica-set
              // member, but a replica holds the record's full endpoint, so
              // deliver directly instead of tunneling into the black hole.
              // (Safe off-thread: the dead set only mutates on the protocol
              // thread, which is blocked inside this shard scan.)
              p.locals.push_back(rec->Detached());
              ++p.rescued;
            } else if (!(from_neighbor_inr && rec->route.next_hop_inr == src)) {
              // Split horizon on the data path: never bounce a multicast
              // copy back to the neighbor it came from.
              p.next_hops.push_back(rec->route.next_hop_inr);
            }
          }
          return;
        }
        for (const NameRecord* rec : matches) {
          if (!p.best.has_value() || rec->app_metric < p.best->app_metric ||
              (rec->app_metric == p.best->app_metric && rec->announcer < p.best->announcer)) {
            p.best = rec->Detached();
          }
        }
      });

  lookup_us_.Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - lookup_start)
          .count()));

  MaybeCache(packet);

  size_t total_matches = 0;
  size_t rescued = 0;
  for (const ShardPartial& p : parts) {
    total_matches += p.matches;
    rescued += p.rescued;
  }
  if (rescued > 0) {
    dead_replica_reroutes_.Increment(rescued);
  }
  Trace(packet, TraceEventKind::kLookup, "", {}, total_matches);

  if (early_binding) {
    std::vector<NameRecord> merged;
    merged.reserve(total_matches);
    for (ShardPartial& p : parts) {
      std::move(p.records.begin(), p.records.end(), std::back_inserter(merged));
    }
    std::sort(merged.begin(), merged.end(), [](const NameRecord& a, const NameRecord& b) {
      return a.announcer < b.announcer;
    });
    HandleEarlyBinding(src, packet, std::move(merged));
    return;
  }
  if (total_matches == 0) {
    NoteDrop(packet, ForwardingDropReason::kNoMatch);
    return;
  }
  if (deliver_all) {
    HandleMulticast(packet, parts);
  } else {
    // Late route merge: the global argmin over the shard-local winners.
    const NameRecord* best = nullptr;
    for (const ShardPartial& p : parts) {
      if (!p.best.has_value()) {
        continue;
      }
      if (best == nullptr || p.best->app_metric < best->app_metric ||
          (p.best->app_metric == best->app_metric && p.best->announcer < best->announcer)) {
        best = &*p.best;
      }
    }
    HandleAnycast(packet, *best);
  }
}

void ForwardingAgent::ForwardToVspaceOwner(const Packet& packet, const std::string& vspace) {
  cross_vspace_.Increment();
  vspaces_->ResolveOwner(vspace, [this, packet, vspace](const NodeAddress& owner) {
    if (!owner.IsValid() || owner == self_) {
      NoteDrop(packet, ForwardingDropReason::kVspaceUnresolved);
      return;
    }
    ForwardToInr(packet, owner);
  });
}

void ForwardingAgent::HandleEarlyBinding(const NodeAddress& src, const Packet& packet,
                                         std::vector<NameRecord> records) {
  early_bindings_.Increment();
  uint64_t request_id = 0;
  NodeAddress reply_to = src;
  if (auto parsed = DecodeEarlyBindingPayload(packet.payload); parsed.ok()) {
    request_id = parsed->first;
    if (parsed->second.IsValid()) {
      reply_to = parsed->second;
    }
  }
  EarlyBindingResponse resp;
  resp.request_id = request_id;
  for (const NameRecord& rec : records) {
    resp.items.push_back({rec.endpoint, rec.app_metric});
  }
  Trace(packet, TraceEventKind::kDelivered, "early_binding", reply_to, records.size());
  send_(reply_to, Envelope{MessageBody(std::move(resp))});
}

void ForwardingAgent::HandleAnycast(const Packet& packet, const NameRecord& best) {
  // Exactly one destination: the least application metric; announcer id is
  // the deterministic tie-break (applied per shard, then across shards).
  anycasts_.Increment();
  if (best.route.IsLocal()) {
    DeliverLocal(packet, best);
  } else if (vspaces_->IsDeadReplica(best.route.next_hop_inr)) {
    // Survivor promotion: this record was learned from a replica-set member
    // that digest silence has declared dead. Replicas carry the full
    // endpoint, so serve the name directly — this is what keeps lookups
    // inside the (k-1)/k goodput floor while the set heals.
    dead_replica_reroutes_.Increment();
    DeliverLocal(packet, best);
  } else {
    ForwardToInr(packet, best.route.next_hop_inr);
  }
}

void ForwardingAgent::HandleMulticast(const Packet& packet, std::vector<ShardPartial>& parts) {
  multicasts_.Increment();
  // Deliver to locally attached matches in deterministic announcer order,
  // and forward exactly one copy per distinct next-hop INR.
  std::vector<NameRecord> locals;
  std::set<NodeAddress> next_hops;
  for (ShardPartial& p : parts) {
    std::move(p.locals.begin(), p.locals.end(), std::back_inserter(locals));
    next_hops.insert(p.next_hops.begin(), p.next_hops.end());
  }
  std::sort(locals.begin(), locals.end(), [](const NameRecord& a, const NameRecord& b) {
    return a.announcer < b.announcer;
  });
  for (const NameRecord& rec : locals) {
    DeliverLocal(packet, rec);
  }
  for (const NodeAddress& hop : next_hops) {
    ForwardToInr(packet, hop);
  }
}

void ForwardingAgent::DeliverLocal(const Packet& packet, const NameRecord& record) {
  local_deliveries_.Increment();
  Trace(packet, TraceEventKind::kDelivered, "", record.endpoint.address);
  send_(record.endpoint.address, Envelope{MessageBody(packet)});
}

void ForwardingAgent::ForwardToInr(const Packet& packet, const NodeAddress& next_hop) {
  Packet copy = packet;
  copy.hop_limit -= 1;
  // Each overlay hop also charges the deadline budget (1ms minimum): a packet
  // whose budget dies here is dead work for every resolver downstream too.
  if (!ConsumeDeadlineBudget(copy, kHopDeadlineCostMs)) {
    NoteDrop(copy, ForwardingDropReason::kDeadline);
    return;
  }
  tunneled_.Increment();
  Trace(copy, TraceEventKind::kNextHopChosen, "", next_hop, copy.hop_limit);
  send_(next_hop, Envelope{MessageBody(std::move(copy))});
}

bool ForwardingAgent::TryAnswerFromCache(const Packet& packet, const NameSpecifier& dst) {
  const PacketCache::Entry* entry = cache_->Lookup(dst.ToString(), executor_->Now());
  if (entry == nullptr) {
    return false;
  }
  cache_answers_.Increment();
  Trace(packet, TraceEventKind::kDelivered, "cache_answer", self_);
  Packet reply;
  reply.source_name = entry->name_key;
  reply.destination_name = packet.source_name;
  reply.payload = entry->payload;
  reply.hop_limit = kDefaultHopLimit;
  // The reply routes like any other packet (anycast towards the requester's
  // own advertised name).
  HandleData(self_, reply);
  return true;
}

void ForwardingAgent::MaybeCache(const Packet& packet) {
  if (packet.cache_lifetime_s == 0 || packet.source_name.empty()) {
    return;
  }
  auto src_name = decoder_.Decode(packet.source_name);
  if (!src_name.ok()) {
    return;
  }
  cache_->Insert((*src_name)->ToString(), packet.payload,
                 executor_->Now() + Seconds(packet.cache_lifetime_s));
  cache_inserts_.Increment();
}

}  // namespace ins
