#include "ins/inr/inr.h"

#include <algorithm>
#include <sstream>

#include "ins/common/logging.h"
#include "ins/name/parser.h"

namespace ins {

Inr::Inr(Executor* executor, Transport* transport, InrConfig config)
    : executor_(executor),
      transport_(transport),
      config_(std::move(config)),
      trace_ring_(config_.trace_ring_capacity),
      flight_(config_.flight_recorder_capacity),
      timeseries_(config_.metrics_timeseries_capacity),
      log_tag_(transport->local_address().ToString()),
      messages_(metrics_.RegisterCounter("inr.messages")),
      bytes_received_(metrics_.RegisterCounter("inr.bytes_received")) {
  // Per-stage latency attribution: sampled packets crossing this node leave
  // their stage spans in latency.stage.* histograms.
  trace_ring_.EnableStageAttribution(&metrics_);
  flight_.set_node(transport->local_address());
  if (!config_.topology.dsr.IsValid()) {
    config_.topology.dsr = config_.dsr;
  }
  if (config_.replication.enabled) {
    // The balancer owns set maintenance (it already talks to the DSR about
    // capacity); replica_k is configured once, on the replication config.
    config_.load_balancer.replica_k = config_.replication.replica_k;
  }
  SendFn send = [this](const NodeAddress& dst, const Envelope& env) {
    transport_->Send(dst, EncodeMessage(env));
  };

  lookup_pool_ = std::make_unique<WorkerPool>(config_.lookup_threads);
  ping_agent_ = std::make_unique<PingAgent>(executor_, send);
  topology_ = std::make_unique<TopologyManager>(executor_, ping_agent_.get(), send,
                                                address(), config_.topology, &metrics_);
  ShardedNameTree::Options store_options;
  store_options.fallback_shards = config_.fallback_shards;
  store_options.pool = lookup_pool_.get();
  // Journaling costs one entry copy per state-changing write; only pay it
  // when replication will consume the journal.
  store_options.journal_capacity =
      config_.replication.enabled ? config_.replication.journal_capacity : 0;
  // The protocol thread is the store's only mutator, and shard fan-out joins
  // before it continues, so the store runs in inline (lock-free-by-absence)
  // mode; the left-right concurrent mode is for the standalone lookup core.
  vspaces_ = std::make_unique<VspaceManager>(executor_, send, config_.dsr, &metrics_,
                                             store_options);
  cache_ = std::make_unique<PacketCache>(config_.cache_capacity);
  discovery_ = std::make_unique<NameDiscovery>(executor_, send, address(), vspaces_.get(),
                                               topology_.get(), &metrics_,
                                               config_.discovery);
  forwarding_ = std::make_unique<ForwardingAgent>(executor_, send, address(),
                                                  vspaces_.get(), topology_.get(),
                                                  cache_.get(), &metrics_, &trace_ring_);
  load_balancer_ = std::make_unique<LoadBalancer>(executor_, send, address(), config_.dsr,
                                                  vspaces_.get(), discovery_.get(),
                                                  &metrics_, config_.load_balancer);
  replication_ = std::make_unique<ReplicationAgent>(executor_, send, address(), config_.dsr,
                                                    vspaces_.get(), topology_.get(),
                                                    discovery_.get(), &metrics_,
                                                    config_.replication);
  if (config_.replication.enabled) {
    // Digests carry liveness, deltas carry changes: the periodic O(names)
    // re-announcement becomes redundant bytes.
    discovery_->SetPeriodicSuppressed(true);
  }
  if (replication_->replica_mode()) {
    // Replica-set owner caching: TTL'd entries instead of the seed's
    // forever-cache, plus dead-replica steering on the forwarding path.
    vspaces_->EnableReplicaMode(config_.replication.owner_cache_ttl,
                                static_cast<size_t>(config_.replication.replica_k));
  }
  admission_ = std::make_unique<AdmissionController>(
      executor_, &metrics_, config_.admission,
      [this](const NodeAddress& src, const Envelope& env, Duration queued) {
        DispatchEnvelope(src, env, queued);
      },
      &trace_ring_, address());
  topology_->AttachFlightRecorder(&flight_);
  replication_->AttachFlightRecorder(&flight_);
  admission_->AttachFlightRecorder(&flight_);

  for (const std::string& vspace : config_.vspaces) {
    vspaces_->AddSpace(vspace);
  }
  // Keep the DSR registration's vspace list current as spaces come and go.
  vspaces_->on_spaces_changed = [this] {
    if (running_) {
      topology_->SetVspaces(vspaces_->RoutedSpaces());
    }
  };
  // A new overlay neighbor immediately learns everything we know. A peer
  // that comes (back) up is also evidently not a dead replica anymore.
  topology_->on_neighbor_up = [this](const NodeAddress& peer) {
    vspaces_->NoteReplicaAlive(peer);
    discovery_->SendFullStateTo(peer);
  };
  // A dead link stops being a usable next hop right away. The replication
  // cursor for the peer dies with the edge, so a re-formed edge starts from
  // serial 0 — a full resynchronization, never a silent gap. Vspaces the
  // peer co-replicated with us are the exception: their records are
  // RETAINED (and served directly) so the set survives its member.
  topology_->on_neighbor_down = [this](const NodeAddress& peer) {
    const std::set<std::string> keep = replication_->NotePeerDown(peer);
    discovery_->PurgeRoutesVia(peer, keep);
    replication_->ForgetPeer(peer);
  };
  // Default idle-termination policy: shut down gracefully.
  load_balancer_->on_should_terminate = [this] { Stop(); };

  // Real transports report their transport.* counters (drops, batch sizes)
  // into this node's registry; sim transports ignore the call.
  transport_->AttachMetrics(&metrics_);
  transport_->SetReceiveHandler(
      [this](const NodeAddress& src, const Bytes& data) { OnMessage(src, data); });
}

Inr::~Inr() {
  Stop();
  transport_->SetReceiveHandler(nullptr);
}

void Inr::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  // Ask the DSR which spaces our (possibly still-live) soft-state
  // registration routes, BEFORE topology_->Start() re-registers with the
  // config's initial list and overwrites it. A fresh INR gets back at most
  // what it already routes; a restarted one recovers the assignments its
  // crashed predecessor held, instead of black-holing them until an operator
  // notices.
  DsrAssignmentsRequest recover;
  recover.request_id = static_cast<uint64_t>(address().ip) << 16 | address().port;
  recover.inr = address();
  transport_->Send(config_.dsr, Encode(recover));
  topology_->Start(vspaces_->RoutedSpaces());
  discovery_->Start();
  load_balancer_->Start();
  replication_->Start();
  if (config_.netmon.advertise) {
    AdvertiseNetmon();
  }
  if (config_.admission.enabled && config_.pacer_feedback_interval.count() > 0) {
    PacerFeedbackTick();
  }
  flight_.Record(executor_->Now(), FlightEventKind::kInrStart, FlightSeverity::kInfo);
  INS_LOG(kDebug) << "INR " << address().ToString() << " started";
}

void Inr::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  admission_->Clear();
  if (netmon_task_ != kInvalidTaskId) {
    executor_->Cancel(netmon_task_);
    netmon_task_ = kInvalidTaskId;
  }
  if (pacer_task_ != kInvalidTaskId) {
    executor_->Cancel(pacer_task_);
    pacer_task_ = kInvalidTaskId;
  }
  load_balancer_->Stop();
  replication_->Stop();
  discovery_->Stop();
  topology_->Stop();
  // Tell the DSR to drop us immediately (lifetime 0 = unregister).
  DsrRegister reg;
  reg.inr = address();
  reg.active = true;
  reg.lifetime_s = 0;
  transport_->Send(config_.dsr, Encode(reg));
  flight_.Record(executor_->Now(), FlightEventKind::kInrStop, FlightSeverity::kInfo);
  INS_LOG(kDebug) << "INR " << address().ToString() << " stopped";
}

void Inr::Crash() {
  if (!running_) {
    return;
  }
  running_ = false;  // OnMessage now drops everything: the node is silent
  admission_->Clear();
  if (netmon_task_ != kInvalidTaskId) {
    executor_->Cancel(netmon_task_);
    netmon_task_ = kInvalidTaskId;
  }
  if (pacer_task_ != kInvalidTaskId) {
    executor_->Cancel(pacer_task_);
    pacer_task_ = kInvalidTaskId;
  }
  load_balancer_->Stop();
  replication_->Stop();
  discovery_->Stop();
  topology_->CrashStop();
  flight_.Record(executor_->Now(), FlightEventKind::kInrCrash, FlightSeverity::kCritical);
  INS_LOG(kDebug) << "INR " << address().ToString() << " crashed (injected)";
}

void Inr::OnMessage(const NodeAddress& src, const Bytes& data) {
  if (!running_) {
    // A terminated resolver goes silent: it must not answer pings, or peers
    // would never notice it left if its PeerClose was lost.
    metrics_.Increment("inr.messages_while_stopped");
    return;
  }
  ScopedLogNode log_scope(log_tag_);
  messages_.Increment();
  bytes_received_.Increment(data.size());
  auto env = DecodeMessage(data);
  if (!env.ok()) {
    metrics_.Increment("inr.decode_errors");
    return;
  }
  if (const Packet* packet = std::get_if<Packet>(&env->body);
      packet != nullptr && packet->traced()) {
    TraceEvent ev;
    ev.trace_id = packet->trace_id;
    ev.at = executor_->Now();
    ev.node = address();
    ev.kind = TraceEventKind::kReceived;
    ev.peer = src;
    ev.value = packet->hop_limit;
    trace_ring_.Record(ev);
  }
  admission_->Admit(src, std::move(env).value());
}

void Inr::DispatchEnvelope(const NodeAddress& src, const Envelope& env, Duration queued) {
  if (!running_) {
    return;  // crashed/stopped while this message sat in the admission queue
  }
  ScopedLogNode log_scope(log_tag_);
  if (auto* packet = std::get_if<Packet>(&env.body)) {
    // Time spent queued comes out of the packet's deadline budget: resolving
    // a request its client already abandoned is pure added load.
    if (queued > Duration{0} && packet->deadline_budget_ms != 0) {
      Packet charged = *packet;
      const auto queued_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(queued).count();
      if (!ConsumeDeadlineBudget(charged, static_cast<uint32_t>(queued_ms))) {
        forwarding_->NoteDrop(charged, ForwardingDropReason::kDeadline);
        return;
      }
      forwarding_->HandleData(src, charged);
      return;
    }
    forwarding_->HandleData(src, *packet);
  } else if (auto* ad = std::get_if<Advertisement>(&env.body)) {
    discovery_->HandleAdvertisement(src, *ad);
  } else if (auto* update = std::get_if<NameUpdate>(&env.body)) {
    // Still processed when `src` is not an overlay neighbor (delegation
    // seeds a new vspace owner this way), but the sender is told to close
    // its half-open edge if it thinks this was a tree link.
    topology_->NoteTreeEdgeTraffic(src);
    discovery_->HandleNameUpdate(src, *update);
  } else if (auto* disc = std::get_if<DiscoveryRequest>(&env.body)) {
    HandleDiscoveryRequest(src, *disc);
  } else if (auto* mreq = std::get_if<MetricsRequest>(&env.body)) {
    HandleMetricsRequest(src, *mreq);
  } else if (auto* dmreq = std::get_if<MetricsDeltaRequest>(&env.body)) {
    HandleMetricsDeltaRequest(src, *dmreq);
  } else if (auto* ping = std::get_if<Ping>(&env.body)) {
    topology_->NoteNeighborAlive(src);
    transport_->Send(src, Encode(PingAgent::PongFor(*ping)));
  } else if (auto* pong = std::get_if<Pong>(&env.body)) {
    topology_->NoteNeighborAlive(src);
    ping_agent_->HandlePong(src, *pong);
  } else if (auto* preq = std::get_if<PeerRequest>(&env.body)) {
    topology_->HandlePeerRequest(src, *preq);
  } else if (auto* pacc = std::get_if<PeerAccept>(&env.body)) {
    topology_->HandlePeerAccept(src, *pacc);
  } else if (auto* pclose = std::get_if<PeerClose>(&env.body)) {
    topology_->HandlePeerClose(src, *pclose);
  } else if (auto* keepalive = std::get_if<PeerKeepalive>(&env.body)) {
    // From a neighbor: proof of life. From anyone else: a half-open edge
    // (classically an amnesiac restart of this node, which keeps answering
    // the sender's pings) — NoteTreeEdgeTraffic replies PeerClose.
    topology_->NoteTreeEdgeTraffic(keepalive->from);
  } else if (auto* digest = std::get_if<JournalDigest>(&env.body)) {
    // A digest refreshes a live tree edge's keepalive but never provokes a
    // PeerClose: replica peers digest each other without holding an overlay
    // edge, and a freshly restarted peer (its membership view is gone) would
    // otherwise answer its old co-replica's digest with a close that tears
    // down the very join handshake it is trying to form with the sender.
    // Half-open edges are still reaped by the keepalive timeout.
    if (topology_->IsNeighbor(digest->from)) {
      topology_->NoteTreeEdgeTraffic(digest->from);
    }
    replication_->HandleDigest(src, *digest);
  } else if (auto* dreq = std::get_if<JournalDeltaRequest>(&env.body)) {
    replication_->HandleDeltaRequest(src, *dreq);
  } else if (auto* dresp = std::get_if<JournalDeltaResponse>(&env.body)) {
    replication_->HandleDeltaResponse(src, *dresp);
  } else if (auto* list = std::get_if<DsrListResponse>(&env.body)) {
    topology_->HandleDsrListResponse(*list);
  } else if (auto* vresp = std::get_if<DsrVspaceResponse>(&env.body)) {
    vspaces_->HandleDsrVspaceResponse(*vresp);
  } else if (auto* rset = std::get_if<DsrReplicaSetResponse>(&env.body)) {
    // One response feeds three consumers, each filtering by its own pending
    // ids or routed spaces: the forwarder's owner cache, the replication
    // agent's membership view, and the load balancer's set top-up.
    vspaces_->HandleDsrReplicaSetResponse(*rset);
    replication_->NoteReplicaSet(rset->vspace, rset->replicas);
    load_balancer_->HandleDsrReplicaSetResponse(*rset);
    // Un-recruitment: an invite-joined space whose set is full WITHOUT this
    // resolver (join order beyond k — e.g. a partition made both sides top
    // up, and the heal restored the original members) is relinquished. The
    // members hold every record, so dropping the stranded copy loses
    // nothing, and the convergence contract stays k-wide instead of
    // accreting routers across fault rounds.
    // The answer lists every (non-suspect) registrant in join order; only
    // the first replica_k are the set.
    const size_t k = static_cast<size_t>(config_.replication.replica_k);
    const bool set_full = rset->replicas.size() >= k;
    const auto set_end = rset->replicas.begin() +
                         static_cast<long>(std::min(rset->replicas.size(), k));
    const bool self_in_set =
        std::find(rset->replicas.begin(), set_end, address()) != set_end;
    if (set_full && !self_in_set && invited_spaces_.count(rset->vspace) != 0 &&
        vspaces_->Routes(rset->vspace)) {
      metrics_.Increment("replica.relinquished");
      invited_spaces_.erase(rset->vspace);
      replication_->DropSpace(rset->vspace);
      vspaces_->RemoveSpace(rset->vspace);
    }
  } else if (auto* invite = std::get_if<ReplicaInvite>(&env.body)) {
    // The set's primary recruited this resolver: start routing the vspace.
    // The inviter follows up with a full state push (SendVspaceStateTo), and
    // the next DSR registration advertises the new membership.
    if (replication_->replica_mode() && !vspaces_->Routes(invite->vspace)) {
      metrics_.Increment("replica.joined");
      invited_spaces_.insert(invite->vspace);
      vspaces_->AddSpace(invite->vspace);
    }
  } else if (auto* cands = std::get_if<DsrCandidatesResponse>(&env.body)) {
    load_balancer_->HandleDsrCandidatesResponse(*cands);
  } else if (auto* del = std::get_if<DelegateVspace>(&env.body)) {
    metrics_.Increment("inr.vspaces_accepted");
    vspaces_->AddSpace(del->vspace);
  } else if (auto* assigned = std::get_if<DsrAssignmentsResponse>(&env.body)) {
    // Crash-recovery answer: resume routing every space our pre-crash
    // registration held. AddSpace fires on_spaces_changed, which re-registers
    // the recovered list with the DSR right away.
    for (const std::string& vspace : assigned->vspaces) {
      if (!vspaces_->Routes(vspace)) {
        metrics_.Increment("inr.vspaces_recovered");
        // A resumed space beyond the configured list was acquired at runtime
        // (replica invite or delegation). The invite memo died with the old
        // process, so mark it relinquishable again: if the set is genuinely
        // ours the DSR answer will include us and nothing happens, while a
        // stale recruitment (the set healed full while we were down) gets
        // dropped instead of leaving a journal-less router that black-holes
        // tunnelled lookups. A delegated space keeps us as its earliest
        // live registrant, so it can never relinquish itself this way.
        if (std::find(config_.vspaces.begin(), config_.vspaces.end(), vspace) ==
            config_.vspaces.end()) {
          invited_spaces_.insert(vspace);
        }
        vspaces_->AddSpace(vspace);
      }
    }
  } else {
    metrics_.Increment("inr.unexpected_messages");
  }
}

void Inr::HandleDiscoveryRequest(const NodeAddress& src, const DiscoveryRequest& req) {
  metrics_.Increment("inr.discovery_requests");
  NodeAddress reply_to = req.reply_to.IsValid() ? req.reply_to : src;

  if (!vspaces_->Routes(req.vspace)) {
    DiscoveryRequest forward = req;
    forward.reply_to = reply_to;
    vspaces_->ResolveOwner(req.vspace, [this, forward, reply_to](const NodeAddress& owner) {
      if (owner.IsValid() && owner != address()) {
        transport_->Send(owner, Encode(forward));
        return;
      }
      // Nobody routes the space: answer with an empty result.
      DiscoveryResponse resp;
      resp.request_id = forward.request_id;
      resp.vspace = forward.vspace;
      transport_->Send(reply_to, Encode(resp));
    });
    return;
  }

  NameSpecifier filter;  // empty = match everything
  if (!req.filter_text.empty()) {
    auto parsed = ParseNameSpecifier(req.filter_text);
    if (!parsed.ok()) {
      metrics_.Increment("inr.bad_discovery_filters");
      return;
    }
    filter = std::move(parsed).value();
  }

  DiscoveryResponse resp;
  resp.request_id = req.request_id;
  resp.vspace = req.vspace;
  for (ShardedNameTree::NamedRecord& named : vspaces_->store().LookupNamed(req.vspace, filter)) {
    DiscoveryResponse::Item item;
    item.name_text = named.name.ToString();
    item.endpoint = named.record.endpoint;
    item.app_metric = named.record.app_metric;
    resp.items.push_back(std::move(item));
  }
  transport_->Send(reply_to, Encode(resp));
}

void Inr::RefreshInventoryGauges() {
  size_t names = 0;
  const std::vector<std::string> spaces = vspaces_->RoutedSpaces();
  for (const std::string& vspace : spaces) {
    names += vspaces_->store().RecordCount(vspace);
  }
  metrics_.SetGauge("inr.names", static_cast<int64_t>(names));
  metrics_.SetGauge("inr.neighbors",
                    static_cast<int64_t>(topology_->NeighborAddresses().size()));
  metrics_.SetGauge("inr.vspaces", static_cast<int64_t>(spaces.size()));
}

void Inr::HandleMetricsRequest(const NodeAddress& src, const MetricsRequest& req) {
  metrics_.Increment("inr.metrics_requests");
  // Inventory gauges are poll-time state, not per-event accounting: refresh
  // them only when a snapshot is about to leave the node.
  RefreshInventoryGauges();
  const NodeAddress reply_to = req.reply_to.IsValid() ? req.reply_to : src;
  transport_->Send(reply_to,
                   Encode(BuildMetricsResponse(req.request_id, address(), metrics_.Snapshot())));
}

void Inr::HandleMetricsDeltaRequest(const NodeAddress& src, const MetricsDeltaRequest& req) {
  metrics_.Increment("inr.metrics_requests");
  metrics_.Increment("timeseries.samples");
  RefreshInventoryGauges();
  const NodeAddress reply_to = req.reply_to.IsValid() ? req.reply_to : src;
  // Each poll appends one sample; the sample's sequence number is the
  // client's next baseline. A client whose baseline fell out of the retained
  // window — or references a previous incarnation of this resolver — gets a
  // full snapshot and starts over.
  const MetricsSnapshot now = metrics_.Snapshot();
  // Copy the baseline out of the ring before Append: the new sample may land
  // in (and overwrite) the very slot the baseline occupies.
  const MetricsSample* retained =
      req.since_seq == 0 ? nullptr : timeseries_.SampleAt(req.since_seq);
  const bool have_baseline = retained != nullptr;
  const MetricsSnapshot baseline = have_baseline ? retained->snapshot : MetricsSnapshot{};
  const uint64_t seq = timeseries_.Append(now, executor_->Now());
  if (!have_baseline) {
    metrics_.Increment("timeseries.full_served");
    transport_->Send(reply_to, Encode(BuildMetricsFull(req.request_id, address(), seq, now)));
    return;
  }
  metrics_.Increment("timeseries.delta_served");
  transport_->Send(reply_to, Encode(BuildMetricsDelta(req.request_id, address(), seq,
                                                      req.since_seq, baseline, now)));
}

void Inr::AdvertiseNetmon() {
  Advertisement ad;
  ad.vspace = config_.netmon.vspace;
  ad.name_text = "[service=netmon][node=" + address().ToString() + "]";
  // IP + fixed discriminator: re-advertisements from the same resolver
  // refresh one record instead of accreting new ones.
  ad.announcer = AnnouncerId{address().ip, 0, 0xADu};
  ad.endpoint.address = address();
  ad.lifetime_s = config_.netmon.lifetime_s;
  ad.version = ++netmon_version_;
  discovery_->HandleAdvertisement(address(), ad);
  netmon_task_ = executor_->ScheduleAfter(config_.netmon.refresh, [this] {
    netmon_task_ = kInvalidTaskId;
    if (running_) {
      AdvertiseNetmon();
    }
  });
}

void Inr::PacerFeedbackTick() {
  const Duration signal = admission_->LoadSignal();
  transport_->OnLoadSignal(signal);
  // Flight-record the edges of the pacer feedback loop. The knee mirrors
  // PacerConfig::load_floor's default: below it the pacer runs at full rate.
  static constexpr Duration kBackoffKnee = Milliseconds(5);
  if (!pacer_backing_off_ && signal >= kBackoffKnee) {
    pacer_backing_off_ = true;
    flight_.Record(executor_->Now(), FlightEventKind::kPacerBackoff,
                   FlightSeverity::kWarning, "", {},
                   static_cast<uint64_t>(signal.count()));
  } else if (pacer_backing_off_ && signal < kBackoffKnee) {
    pacer_backing_off_ = false;
    flight_.Record(executor_->Now(), FlightEventKind::kPacerRelease, FlightSeverity::kInfo,
                   "", {}, static_cast<uint64_t>(signal.count()));
  }
  pacer_task_ = executor_->ScheduleAfter(config_.pacer_feedback_interval, [this] {
    pacer_task_ = kInvalidTaskId;
    if (running_) {
      PacerFeedbackTick();
    }
  });
}

std::string Inr::DebugString() const {
  std::ostringstream os;
  os << "INR " << transport_->local_address().ToString() << "\n";
  os << "neighbors:";
  for (const NodeAddress& n : topology_->NeighborAddresses()) {
    os << " " << n.ToString();
  }
  os << "\n";
  for (const std::string& vspace : vspaces_->RoutedSpaces()) {
    const ShardedNameTree& store = vspaces_->store();
    os << "vspace '" << vspace << "': " << store.RecordCount(vspace) << " names in "
       << store.ShardCountOf(vspace) << " shard(s)\n";
    store.ForEachShardTree(vspace, [&os](const NameTree& tree) { os << tree.DebugString(); });
  }
  os << "shards:\n";
  for (const ShardedNameTree::ShardStats& st : vspaces_->store().PerShardStats()) {
    os << "  '" << st.vspace << "'/" << st.sub << ": " << st.records << " records, "
       << st.bytes << " bytes, " << st.lookups << " lookups, " << st.updates
       << " updates\n";
  }
  os << "counters:\n";
  for (const auto& [name, value] : metrics_.counters()) {
    os << "  " << name << " = " << value << "\n";
  }
  return os.str();
}

}  // namespace ins
