// Load balancing and scaling (paper §2.5).
//
// Two bottlenecks, two remedies:
//  * lookup overload — spawn an INR instance on a candidate node obtained
//    from the DSR; newly arriving clients spread across the enlarged
//    resolver set;
//  * name-update overload — spawning another resolver for the *same* spaces
//    would not help (every resolver in a space processes every update), so
//    the resolver delegates one or more virtual spaces to a freshly spawned
//    INR, transferring the space's name state and its DSR ownership.
//
// An idle resolver may also terminate itself, informing its peers and the
// DSR. SpawnListener is the candidate-node side: it waits for a
// kSpawnRequest and materializes a resolver via a caller-supplied factory.

#ifndef INS_INR_LOAD_BALANCER_H_
#define INS_INR_LOAD_BALANCER_H_

#include <functional>
#include <string>
#include <vector>

#include "ins/common/executor.h"
#include "ins/common/metrics.h"
#include "ins/common/transport.h"
#include "ins/inr/vspace.h"
#include "ins/overlay/ping.h"

namespace ins {

struct LoadBalancerConfig {
  bool enabled = false;
  Duration eval_interval = Seconds(10);
  // Spawn a helper resolver when the lookup rate exceeds this.
  double spawn_lookups_per_sec = 500.0;
  // Delegate a vspace when the inbound update-entry rate exceeds this and
  // more than one space is routed.
  double delegate_update_entries_per_sec = 2000.0;
  // Request self-termination when the lookup rate stays below this (0
  // disables termination).
  double terminate_below_lookups_per_sec = 0.0;
  int idle_intervals_before_terminate = 3;

  // --- Replica-set maintenance (replica mode) --------------------------------
  // Mirrors ReplicationConfig::replica_k; plumbed by the owning Inr. When
  // >= 2 the balancer runs a maintenance tick independent of `enabled`: it
  // refreshes the DSR's view of every routed space's replica set, and — as a
  // set's primary — tops the set up to k by inviting DSR candidates.
  int replica_k = 1;
  Duration replica_interval = Seconds(10);
};

class NameDiscovery;

class LoadBalancer {
 public:
  LoadBalancer(Executor* executor, SendFn send, NodeAddress self, NodeAddress dsr,
               VspaceManager* vspaces, NameDiscovery* discovery, MetricsRegistry* metrics,
               LoadBalancerConfig config);
  ~LoadBalancer();

  void Start();
  void Stop();

  void HandleDsrCandidatesResponse(const DsrCandidatesResponse& resp);

  // Maintenance answer from the DSR (only responses carrying this balancer's
  // request-id tag are processed; the forwarder's resolutions share the
  // message type but use untagged ids).
  void HandleDsrReplicaSetResponse(const DsrReplicaSetResponse& resp);

  // Fired when the resolver should shut itself down (idle). The owning Inr
  // decides whether to honor it.
  std::function<void()> on_should_terminate;

  uint64_t spawns_requested() const { return spawns_requested_; }
  uint64_t delegations() const { return delegations_; }

 private:
  enum class PendingAction { kNone, kSpawn, kDelegate };

  // High-bit tag keeping the balancer's DsrReplicaSetRequest ids disjoint
  // from the VspaceManager's (whose counter starts at 1 and grows).
  static constexpr uint64_t kReplicaRequestTag = 1ull << 63;

  void Tick();
  void ReplicaTick();
  void RequestCandidates(PendingAction action);
  // Picks the routed space with the most names (the heaviest to delegate).
  std::string PickSpaceToDelegate() const;

  Executor* executor_;
  SendFn send_;
  NodeAddress self_;
  NodeAddress dsr_;
  VspaceManager* vspaces_;
  NameDiscovery* discovery_;
  MetricsRegistry* metrics_;
  LoadBalancerConfig config_;

  TaskId tick_task_ = kInvalidTaskId;
  TaskId replica_task_ = kInvalidTaskId;
  uint64_t last_lookups_ = 0;
  uint64_t last_update_entries_ = 0;
  int idle_intervals_ = 0;
  PendingAction pending_action_ = PendingAction::kNone;
  uint64_t candidates_request_id_ = 0;
  uint64_t next_request_id_ = 1;
  uint64_t spawns_requested_ = 0;
  uint64_t delegations_ = 0;
};

// Candidate-node agent: listens on the candidate address, answers pings (so
// relaxation probes see it), registers with the DSR as a candidate, and
// invokes `factory` when asked to spawn a resolver.
class SpawnListener {
 public:
  using Factory = std::function<void(const SpawnRequest& request)>;

  SpawnListener(Executor* executor, Transport* transport, NodeAddress dsr, Factory factory);
  ~SpawnListener();

  // True once the factory ran; the listener releases the transport's
  // receive handler so the spawned resolver can take it over.
  bool consumed() const { return consumed_; }

 private:
  void OnMessage(const NodeAddress& src, const Bytes& data);
  void RegisterWithDsr();

  Executor* executor_;
  Transport* transport_;
  NodeAddress dsr_;
  Factory factory_;
  bool consumed_ = false;
  TaskId register_task_ = kInvalidTaskId;
};

}  // namespace ins

#endif  // INS_INR_LOAD_BALANCER_H_
