// The name-discovery protocol (paper §2.2).
//
// Services advertise their names periodically to an attached INR; INRs
// disseminate names to neighbor resolvers with periodic full updates plus
// triggered (delta) updates when something new or different arrives. Name
// state is soft: every record carries a lifetime and is swept when it is not
// refreshed, so services never de-register and resolver/service failures
// heal automatically.
//
// Route metrics accumulate hop by hop (receiver adds the link metric of the
// sending neighbor: the distributed Bellman-Ford computation of §2.2), with
// split horizon — a record is never advertised back to the neighbor it was
// learned from. The AnnouncerID distinguishes identical names from distinct
// applications, exactly as the paper prescribes.

#ifndef INS_INR_NAME_DISCOVERY_H_
#define INS_INR_NAME_DISCOVERY_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "ins/common/executor.h"
#include "ins/common/metrics.h"
#include "ins/inr/vspace.h"
#include "ins/overlay/topology.h"
#include "ins/wire/messages.h"

namespace ins {

struct DiscoveryConfig {
  // The paper's experiments use a 15-second refresh interval (Figure 8).
  Duration update_interval = Seconds(15);
  // Default soft-state lifetime when an advertisement does not specify one:
  // three refresh intervals, tolerating two lost refreshes.
  uint32_t default_lifetime_s = 45;
  Duration expiry_sweep_interval = Seconds(5);
  bool triggered_updates = true;
  // Entries per NameUpdate datagram; larger batches are chunked.
  size_t max_entries_per_update = 64;
  // Metric changes smaller than this fraction count as refreshes, not
  // changes, damping triggered-update storms from RTT jitter.
  double metric_change_threshold = 0.1;
};

class NameDiscovery {
 public:
  NameDiscovery(Executor* executor, SendFn send, NodeAddress self, VspaceManager* vspaces,
                TopologyManager* topology, MetricsRegistry* metrics, DiscoveryConfig config);
  ~NameDiscovery();

  void Start();
  void Stop();

  // A service/client advertisement arrived (possibly forwarded by another
  // INR when this one owns the target vspace).
  void HandleAdvertisement(const NodeAddress& src, const Advertisement& ad);

  // A batch update from a neighbor resolver.
  void HandleNameUpdate(const NodeAddress& src, const NameUpdate& update);

  // Applies journal-replicated upserts from `src` (inr/replication.h) through
  // the same distance-vector acceptance rules as HandleNameUpdate, including
  // onward triggered propagation, so a delta repair crosses the overlay hop
  // by hop. Returns how many entries changed local state.
  size_t ApplyReplicatedEntries(const NodeAddress& src, const std::string& vspace,
                                const std::vector<NameUpdateEntry>& entries);

  // With replication enabled the periodic O(names) full re-announcement is
  // redundant — journal digests carry liveness and deltas carry changes — so
  // the ReplicationAgent suppresses it. The tick keeps rescheduling (cheap),
  // triggered updates and expiry sweeps are untouched, and flipping this back
  // off restores the seed behavior on the next tick.
  void SetPeriodicSuppressed(bool suppressed) { periodic_suppressed_ = suppressed; }

  // Pushes full state for every routed space to one neighbor (called when a
  // neighbor comes up) or for one space to any address (vspace delegation).
  void SendFullStateTo(const NodeAddress& peer);
  void SendVspaceStateTo(const NodeAddress& peer, const std::string& vspace);

  // Drops every non-local route whose next hop is `next_hop` (called when an
  // overlay link dies). Waiting for soft-state expiry would black-hole
  // traffic for up to a lifetime; purged names re-converge from surviving
  // links or the origin's next advertisement. Vspaces in `keep_vspaces` are
  // spared: a dead REPLICA peer's records must survive on this resolver —
  // retaining and serving them is what makes the replica set highly
  // available (they stay lease-bound and expire if nobody re-announces).
  void PurgeRoutesVia(const NodeAddress& next_hop,
                      const std::set<std::string>& keep_vspaces = {});

  // Observer hook: fired when a previously unknown name is grafted.
  std::function<void(const std::string& vspace, const NameSpecifier& name,
                     const NameRecord& record)>
      on_name_discovered;

 private:
  void PeriodicTick();
  void ExpiryTick();
  // Publishes the store's posting-index counters as the index.* metric
  // family (gauges: the index owns the counters; metrics mirror them).
  void PublishIndexMetrics();
  NameUpdateEntry EntryFromRecord(const NameTree& tree, const NameRecord* rec) const;
  NameUpdateEntry EntryFromRecord(const NameSpecifier& name, const NameRecord& rec) const;
  void PropagateTriggered(const std::string& vspace, std::vector<NameUpdateEntry> entries,
                          const NodeAddress& except);
  void SendUpdates(const NodeAddress& peer, const std::string& vspace,
                   std::vector<NameUpdateEntry> entries, bool triggered);
  // Applies one remote entry against the sharded store; returns the entry to
  // propagate if it changed state, or nullopt.
  std::optional<NameUpdateEntry> ApplyRemoteEntry(const NodeAddress& src,
                                                  const std::string& vspace,
                                                  const NameUpdateEntry& entry);

  Executor* executor_;
  SendFn send_;
  NodeAddress self_;
  VspaceManager* vspaces_;
  TopologyManager* topology_;
  MetricsRegistry* metrics_;
  DiscoveryConfig config_;

  TaskId periodic_task_ = kInvalidTaskId;
  TaskId expiry_task_ = kInvalidTaskId;
  bool periodic_suppressed_ = false;
};

}  // namespace ins

#endif  // INS_INR_NAME_DISCOVERY_H_
