#include "ins/inr/replication.h"

#include <algorithm>
#include <iterator>
#include <limits>

#include "ins/common/logging.h"

namespace ins {

ReplicationAgent::ReplicationAgent(Executor* executor, SendFn send, NodeAddress self,
                                   NodeAddress dsr, VspaceManager* vspaces,
                                   TopologyManager* topology, NameDiscovery* discovery,
                                   MetricsRegistry* metrics, ReplicationConfig config)
    : executor_(executor),
      send_(std::move(send)),
      self_(self),
      dsr_(dsr),
      vspaces_(vspaces),
      topology_(topology),
      discovery_(discovery),
      metrics_(metrics),
      config_(config) {}

ReplicationAgent::~ReplicationAgent() { Stop(); }

void ReplicationAgent::Start() {
  if (!config_.enabled || running_) {
    return;
  }
  running_ = true;
  digest_task_ = executor_->ScheduleAfter(config_.digest_interval, [this] { DigestTick(); });
  retry_task_ = executor_->ScheduleAfter(config_.transfer_timeout, [this] { RetryTick(); });
}

void ReplicationAgent::Stop() {
  running_ = false;
  executor_->Cancel(digest_task_);
  executor_->Cancel(retry_task_);
  digest_task_ = retry_task_ = kInvalidTaskId;
  peers_.clear();
  replica_members_.clear();
  replica_last_heard_.clear();
  dead_peer_spaces_.clear();
  UpdatePeerGauges();
}

void ReplicationAgent::DigestTick() {
  SendDigests();
  CheckReplicaLiveness();
  digest_task_ = executor_->ScheduleAfter(config_.digest_interval, [this] { DigestTick(); });
}

void ReplicationAgent::SendDigests() {
  JournalDigest digest;
  digest.from = self_;
  for (const std::string& vspace : vspaces_->RoutedSpaces()) {
    digest.items.push_back({vspace, vspaces_->store().JournalHead(vspace)});
  }
  std::set<NodeAddress> neighbors;
  for (const NodeAddress& peer : topology_->NeighborAddresses()) {
    neighbors.insert(peer);
    metrics_->Increment("replication.digests_sent");
    send_(peer, Envelope{MessageBody(digest)});
  }
  if (!replica_mode()) {
    return;
  }
  // Replica-set members are usually NOT overlay neighbors; the digest (and
  // with it the lease renewal + liveness signal) must reach them explicitly.
  std::set<NodeAddress> extra;
  for (const auto& [vspace, members] : replica_members_) {
    for (const NodeAddress& member : members) {
      if (neighbors.count(member) == 0) {
        extra.insert(member);
      }
    }
  }
  for (const NodeAddress& member : extra) {
    metrics_->Increment("replica.digests_sent");
    send_(member, Envelope{MessageBody(digest)});
  }
}

void ReplicationAgent::UpdatePeerGauges() {
  std::set<NodeAddress> distinct;
  for (const auto& [key, ps] : peers_) {
    distinct.insert(key.first);
  }
  metrics_->SetGauge("replication.peer_spaces", static_cast<int64_t>(peers_.size()));
  metrics_->SetGauge("replication.peers", static_cast<int64_t>(distinct.size()));
}

bool ReplicationAgent::IsReplicaPeer(const NodeAddress& addr) const {
  for (const auto& [vspace, members] : replica_members_) {
    if (std::find(members.begin(), members.end(), addr) != members.end()) {
      return true;
    }
  }
  return false;
}

void ReplicationAgent::NoteReplicaSet(const std::string& vspace,
                                      const std::vector<NodeAddress>& members) {
  if (!replica_mode() || !running_ || !vspaces_->Routes(vspace)) {
    return;
  }
  // The DSR answers the FULL join-ordered registrant list; only the first
  // replica_k entries ARE the set. For a widely-routed space (think "") the
  // tail is every other resolver in the overlay — treating those as members
  // would make everyone digest everyone and retain everyone's routes.
  const auto set_end =
      members.begin() +
      std::min(members.size(), static_cast<size_t>(config_.replica_k));
  // Only an actual member adopts the set. A resolver that merely routes the
  // space (every router asks the DSR for the set to fill its owner cache)
  // must NOT treat the members as replica peers: it would digest them
  // off-tree, declare them dead on digest silence, and — worst — retain
  // every route via a dead member in NotePeerDown, leaving stale
  // distance-vector entries that re-propagate and loop once the member
  // restarts empty.
  //
  // Absence from the set does NOT revoke an adopted membership, though: a
  // member that was reported dead across a partition is suspect at the DSR,
  // so the answer omits it until its own registration refresh clears the
  // suspicion — self-demoting in that window would stop member-to-member
  // anti-entropy and let the journal-applied copies age out. Membership ends
  // only with the space itself (DropSpace).
  if (std::find(members.begin(), set_end, self_) == set_end) {
    if (replica_members_.count(vspace) == 0) {
      return;
    }
  } else {
    std::vector<NodeAddress> others;
    for (auto it = members.begin(); it != set_end; ++it) {
      if (*it == self_) {
        continue;
      }
      others.push_back(*it);
      // Seed the failure detector at learn time; only real digests advance it.
      replica_last_heard_.emplace(*it, executor_->Now());
    }
    replica_members_[vspace] = std::move(others);
  }
  std::set<NodeAddress> all;
  for (const auto& [space, mem] : replica_members_) {
    all.insert(mem.begin(), mem.end());
  }
  for (auto it = replica_last_heard_.begin(); it != replica_last_heard_.end();) {
    it = all.count(it->first) == 0 ? replica_last_heard_.erase(it) : std::next(it);
  }
  metrics_->SetGauge("replica.members", static_cast<int64_t>(all.size()));
}

void ReplicationAgent::DropSpace(const std::string& vspace) {
  if (replica_members_.erase(vspace) == 0) {
    return;
  }
  std::set<NodeAddress> all;
  for (const auto& [space, mem] : replica_members_) {
    all.insert(mem.begin(), mem.end());
  }
  for (auto it = replica_last_heard_.begin(); it != replica_last_heard_.end();) {
    it = all.count(it->first) == 0 ? replica_last_heard_.erase(it) : std::next(it);
  }
  metrics_->SetGauge("replica.members", static_cast<int64_t>(all.size()));
}

void ReplicationAgent::CheckReplicaLiveness() {
  if (!replica_mode()) {
    return;
  }
  const TimePoint now = executor_->Now();
  const Duration window = config_.digest_interval * config_.replica_missed_digests;
  std::vector<NodeAddress> dead;
  for (const auto& [peer, last] : replica_last_heard_) {
    if (now - last > window) {
      dead.push_back(peer);
    }
  }
  for (const NodeAddress& peer : dead) {
    metrics_->Increment("replica.peer_deaths");
    DeclareReplicaDead(peer);
  }
}

void ReplicationAgent::DeclareReplicaDead(const NodeAddress& peer) {
  bool was_member = false;
  for (auto& [vspace, members] : replica_members_) {
    auto it = std::find(members.begin(), members.end(), peer);
    if (it != members.end()) {
      members.erase(it);
      was_member = true;
      // Membership forgets the dead peer right away (the DSR's next answer
      // drops it too), but the overlay keepalive detector fires LATER —
      // NotePeerDown must still know which spaces to spare from the purge.
      dead_peer_spaces_[peer].insert(vspace);
    }
  }
  replica_last_heard_.erase(peer);
  if (!was_member) {
    return;
  }
  INS_LOG(kDebug) << "replication: " << self_.ToString() << " declares replica peer "
                  << peer.ToString() << " dead";
  if (flight_ != nullptr) {
    flight_->Record(executor_->Now(), FlightEventKind::kReplicaDead,
                    FlightSeverity::kCritical, "digest-silence", peer);
  }
  // Steer this resolver's own forwarding away immediately; records via the
  // peer are deliberately RETAINED (survivors keep serving them — delivery
  // goes straight to the record's endpoint while the peer is believed dead).
  vspaces_->NoteReplicaDead(peer);
  // Cursors are meaningless across the peer's death; if it returns, its
  // digest (serial regression or fresh history) resyncs from zero.
  ForgetPeer(peer);
  if (dsr_.IsValid()) {
    DsrDeadInrReport report;
    report.reporter = self_;
    report.dead = peer;
    metrics_->Increment("replica.dead_reports_sent");
    send_(dsr_, Envelope{MessageBody(std::move(report))});
  }
}

std::set<std::string> ReplicationAgent::NotePeerDown(const NodeAddress& peer) {
  std::set<std::string> keep;
  if (!replica_mode() || !running_) {
    return keep;
  }
  bool still_member = false;
  for (const auto& [vspace, members] : replica_members_) {
    if (std::find(members.begin(), members.end(), peer) != members.end()) {
      keep.insert(vspace);
      still_member = true;
    }
  }
  // Spaces the digest detector already dissociated the peer from (it fires
  // well before the overlay keepalive window) still need their records kept.
  if (auto memo = dead_peer_spaces_.find(peer); memo != dead_peer_spaces_.end()) {
    keep.insert(memo->second.begin(), memo->second.end());
  }
  if (still_member) {
    metrics_->Increment("replica.peer_deaths");
    DeclareReplicaDead(peer);
  }
  return keep;
}

void ReplicationAgent::RetryTick() {
  const TimePoint now = executor_->Now();
  for (auto& [key, ps] : peers_) {
    if (!ps.awaiting || now < ps.deadline) {
      continue;
    }
    if (ps.retries >= config_.max_transfer_retries) {
      metrics_->Increment("replication.transfer_aborts");
      AbortTransfer(ps);
      continue;
    }
    // Restart the whole transfer: the server regenerates every chunk, so the
    // sequence cursor and any partial snapshot inventory reset with it.
    ++ps.retries;
    ps.next_seq = 0;
    ps.snapshot_seen.clear();
    ps.deadline = now + config_.transfer_timeout;
    metrics_->Increment("replication.transfer_retries");
    SendRequest(key.first, key.second, ps);
  }
  retry_task_ = executor_->ScheduleAfter(config_.transfer_timeout, [this] { RetryTick(); });
}

void ReplicationAgent::AbortTransfer(PeerSpace& ps) {
  ps.awaiting = false;
  ps.full = false;
  ps.next_seq = 0;
  ps.retries = 0;
  ps.snapshot_seen.clear();
}

void ReplicationAgent::ForgetPeer(const NodeAddress& peer) {
  size_t erased = 0;
  for (auto it = peers_.begin(); it != peers_.end();) {
    if (it->first.first == peer) {
      it = peers_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  if (erased > 0) {
    // Eager gauge update: a dead neighbor must not stay counted until the
    // next digest cadence.
    UpdatePeerGauges();
  }
}

uint64_t ReplicationAgent::AppliedSerial(const NodeAddress& peer,
                                         const std::string& vspace) const {
  auto it = peers_.find({peer, vspace});
  return it == peers_.end() ? 0 : it->second.applied_serial;
}

bool ReplicationAgent::TransferInFlight() const {
  for (const auto& [key, ps] : peers_) {
    if (ps.awaiting) {
      return true;
    }
  }
  return false;
}

void ReplicationAgent::HandleDigest(const NodeAddress& src, const JournalDigest& digest) {
  if (!config_.enabled || !running_) {
    return;
  }
  const bool replica_peer = IsReplicaPeer(digest.from);
  if (!topology_->IsNeighbor(digest.from) && !replica_peer) {
    metrics_->Increment("replication.non_neighbor_messages");
    return;
  }
  if (replica_peer) {
    // Direct proof of life for the per-vspace failure detector — and a
    // pardon, if this resolver had already written the sender off.
    replica_last_heard_[digest.from] = executor_->Now();
    vspaces_->NoteReplicaAlive(digest.from);
    if (dead_peer_spaces_.erase(digest.from) > 0 && flight_ != nullptr) {
      flight_->Record(executor_->Now(), FlightEventKind::kReplicaAlive,
                      FlightSeverity::kInfo, "digest-resumed", digest.from);
    }
  }
  metrics_->Increment("replication.digests_received");
  const size_t peers_before = peers_.size();
  for (const JournalDigest::Item& item : digest.items) {
    if (!vspaces_->Routes(item.vspace)) {
      continue;
    }
    PeerSpace& ps = peers_[{src, item.vspace}];
    if (item.serial == ps.applied_serial) {
      // Current: the digest is the liveness lease for everything we route
      // via this peer — the replacement for per-record re-announcement.
      if (!ps.awaiting) {
        RefreshReplicasVia(src, item.vspace);
      }
      continue;
    }
    if (ps.awaiting) {
      continue;  // one outstanding transfer per (peer, vspace)
    }
    if (item.serial > ps.applied_serial) {
      StartTransfer(src, item.vspace, ps, /*full=*/false);
    } else {
      // Serial regression: the peer restarted with a fresh journal. Our
      // cursor is meaningless — reset and take a snapshot.
      metrics_->Increment("replication.serial_regressions");
      ps.applied_serial = 0;
      StartTransfer(src, item.vspace, ps, /*full=*/true);
    }
  }
  if (peers_.size() != peers_before) {
    UpdatePeerGauges();
  }
}

void ReplicationAgent::StartTransfer(const NodeAddress& peer, const std::string& vspace,
                                     PeerSpace& ps, bool full) {
  if (full && flight_ != nullptr) {
    flight_->Record(executor_->Now(), FlightEventKind::kSnapshotFallback,
                    FlightSeverity::kWarning, "serial-reset", peer);
  }
  ps.awaiting = true;
  ps.full = full;
  ps.next_seq = 0;
  ps.retries = 0;
  ps.snapshot_seen.clear();
  ps.behind_since = executor_->Now();
  ps.deadline = executor_->Now() + config_.transfer_timeout;
  SendRequest(peer, vspace, ps);
}

void ReplicationAgent::SendRequest(const NodeAddress& peer, const std::string& vspace,
                                   const PeerSpace& ps) {
  JournalDeltaRequest req;
  req.from = self_;
  req.vspace = vspace;
  req.after_serial = ps.applied_serial;
  req.full = ps.full;
  metrics_->Increment("replication.delta_requests_sent");
  send_(peer, Envelope{MessageBody(std::move(req))});
}

uint32_t ReplicationAgent::RemainingLifetimeS(TimePoint expires) const {
  const TimePoint now = executor_->Now();
  if (expires <= now) {
    return 0;
  }
  return static_cast<uint32_t>((expires - now).count() / 1000000);
}

void ReplicationAgent::HandleDeltaRequest(const NodeAddress& src,
                                          const JournalDeltaRequest& req) {
  if (!config_.enabled || !running_) {
    return;
  }
  metrics_->Increment("replication.delta_requests_received");
  if (!vspaces_->Routes(req.vspace)) {
    // Delegated away since the digest; the requester's transfer times out
    // and the next digest round (without this vspace) clears the confusion.
    metrics_->Increment("replication.requests_unrouted_space");
    return;
  }
  ShardedNameTree& store = vspaces_->store();
  const NameJournal* journal = store.journal(req.vspace);

  bool snapshot = req.full || journal == nullptr;
  std::vector<JournalEntry> raw;
  if (!snapshot &&
      !journal->ReadSince(req.after_serial, std::numeric_limits<size_t>::max(), &raw)) {
    // The requester's cursor fell off the ring: history is gone, fall back
    // to the full snapshot transfer.
    raw.clear();
    snapshot = true;
  }

  std::vector<JournalDeltaResponse::Entry> entries;
  uint64_t to_serial = 0;
  if (snapshot) {
    metrics_->Increment("replication.snapshots_sent");
    to_serial = journal == nullptr ? 0 : journal->head_serial();
    store.ForEachShardTree(req.vspace, [&](const NameTree& tree) {
      for (const NameRecord* rec : tree.AllRecords()) {
        if (!rec->route.IsLocal() && rec->route.next_hop_inr == src) {
          continue;  // split horizon: never hand records back to their source
        }
        JournalDeltaResponse::Entry e;
        e.op = static_cast<uint8_t>(JournalOp::kUpsert);
        e.name_text = tree.ExtractName(rec).ToString();
        e.announcer = rec->announcer;
        e.endpoint = rec->endpoint;
        e.app_metric = rec->app_metric;
        e.route_metric = rec->route.overlay_metric;
        e.lifetime_s = RemainingLifetimeS(rec->expires);
        e.version = rec->version;
        entries.push_back(std::move(e));
      }
    });
  } else {
    to_serial = raw.empty() ? journal->head_serial() : raw.back().serial;
    entries.reserve(raw.size());
    for (const JournalEntry& je : raw) {
      JournalDeltaResponse::Entry e;
      e.op = static_cast<uint8_t>(je.op);
      e.announcer = je.announcer;
      if (je.op == JournalOp::kUpsert) {
        e.name_text = je.name_text;
        e.endpoint = je.endpoint;
        e.app_metric = je.app_metric;
        e.route_metric = je.route_metric;
        e.version = je.version;
        // The captured expiry is stale the moment a soft-state refresh lands
        // (refreshes are not journaled); serve the CURRENT record's remaining
        // lifetime when it is still alive. A dead record keeps its captured
        // (lapsed) expiry — a later delete/expire entry in this same delta
        // removes it at the receiver anyway.
        std::optional<NameRecord> live = store.Find(req.vspace, je.announcer);
        e.lifetime_s = RemainingLifetimeS(live.has_value() ? live->expires : je.expires);
      }
      entries.push_back(std::move(e));
    }
    metrics_->Increment("replication.delta_entries_sent", entries.size());
  }
  SendChunked(src, req.vspace, snapshot, to_serial, std::move(entries));
}

void ReplicationAgent::SendChunked(const NodeAddress& peer, const std::string& vspace,
                                   bool snapshot, uint64_t to_serial,
                                   std::vector<JournalDeltaResponse::Entry> entries) {
  const size_t per_chunk = std::max<size_t>(1, config_.max_entries_per_response);
  uint32_t seq = 0;
  size_t i = 0;
  do {
    JournalDeltaResponse resp;
    resp.from = self_;
    resp.vspace = vspace;
    resp.snapshot = snapshot;
    resp.to_serial = to_serial;
    resp.seq = seq++;
    const size_t end = std::min(entries.size(), i + per_chunk);
    resp.entries.assign(std::make_move_iterator(entries.begin() + static_cast<long>(i)),
                        std::make_move_iterator(entries.begin() + static_cast<long>(end)));
    i = end;
    resp.last = i >= entries.size();
    send_(peer, Envelope{MessageBody(std::move(resp))});
  } while (i < entries.size());
}

void ReplicationAgent::HandleDeltaResponse(const NodeAddress& src,
                                           const JournalDeltaResponse& resp) {
  if (!config_.enabled || !running_) {
    return;
  }
  auto it = peers_.find({src, resp.vspace});
  if (it == peers_.end() || !it->second.awaiting) {
    metrics_->Increment("replication.unexpected_responses");
    return;  // duplicate, or a chunk of a transfer we already aborted
  }
  PeerSpace& ps = it->second;
  if (resp.seq != ps.next_seq) {
    // A chunk vanished (UDP): this transfer cannot complete. Leave it
    // awaiting; the retry tick re-requests the whole thing.
    metrics_->Increment("replication.chunk_gaps");
    return;
  }
  if (ps.next_seq == 0) {
    // The server decides delta-vs-snapshot (our cursor may have fallen off
    // its ring); adopt its choice on the first chunk.
    ps.full = resp.snapshot;
  } else if (resp.snapshot != ps.full) {
    metrics_->Increment("replication.chunk_gaps");
    return;  // interleaved chunks of two different transfers
  }

  std::vector<NameUpdateEntry> upserts;
  for (const JournalDeltaResponse::Entry& e : resp.entries) {
    const JournalOp op = static_cast<JournalOp>(e.op);
    if (op == JournalOp::kUpsert) {
      if (ps.full) {
        ps.snapshot_seen.insert(e.announcer);
      }
      NameUpdateEntry u;
      u.name_text = e.name_text;
      u.announcer = e.announcer;
      u.endpoint = e.endpoint;
      u.app_metric = e.app_metric;
      u.route_metric = e.route_metric;
      u.lifetime_s = e.lifetime_s;
      u.version = e.version;
      upserts.push_back(std::move(u));
    } else {
      // Tombstone: only meaningful for state we route via the sender — a
      // record reached over another path (or our own local one) has its own
      // journal feed and must not be killed by this peer's history. The one
      // exception is an EXPIRY tombstone hitting a record orphaned on a dead
      // replica: its own feed is gone, so a surviving peer's proof that the
      // announcer lapsed is the only death notice it will ever get (the pair
      // of the orphan lease in RefreshReplicasVia). A kDelete stays strictly
      // by-sender — it records a route purge at the sender, not an announcer
      // death, and must never unwind another node's retention.
      std::optional<NameRecord> rec = vspaces_->store().Find(resp.vspace, e.announcer);
      if (rec.has_value() && !rec->route.IsLocal() &&
          (rec->route.next_hop_inr == src ||
           (op == JournalOp::kExpire &&
            vspaces_->IsDeadReplica(rec->route.next_hop_inr)))) {
        if (vspaces_->store().Remove(resp.vspace, e.announcer)) {
          INS_LOG(kDebug) << "replication: " << self_.ToString() << " applied tombstone "
                          << e.announcer.ToString() << " in '" << resp.vspace
                          << "' from " << src.ToString();
          metrics_->Increment("replication.tombstones_applied");
        }
      }
    }
  }
  if (!upserts.empty()) {
    // The delta rides the same distance-vector acceptance rules as a
    // NameUpdate (local wins, better path adopted, echoes ignored) and
    // triggers onward propagation, so repair crosses the overlay hop by hop.
    const size_t applied = discovery_->ApplyReplicatedEntries(src, resp.vspace, upserts);
    metrics_->Increment("replication.delta_entries_applied", applied);
  }
  ps.next_seq++;
  if (!resp.last) {
    ps.deadline = executor_->Now() + config_.transfer_timeout;  // progress
    return;
  }

  if (ps.full) {
    metrics_->Increment("replication.snapshots_applied");
    PurgeUnseenVia(src, resp.vspace, ps.snapshot_seen);
  }
  ps.applied_serial = resp.to_serial;
  metrics_->RecordDuration("replication.catchup_us", executor_->Now() - ps.behind_since);
  AbortTransfer(ps);  // transfer done: reset the state machine
  // The records untouched by this transfer still hold their old leases; the
  // digest that triggered the transfer could not refresh them (we were
  // behind), so re-arm now that we are current.
  RefreshReplicasVia(src, resp.vspace);
}

void ReplicationAgent::RefreshReplicasVia(const NodeAddress& peer, const std::string& vspace) {
  ShardedNameTree& store = vspaces_->store();
  std::vector<AnnouncerId> via;
  std::vector<AnnouncerId> orphans;
  store.ForEachShardTree(vspace, [&](const NameTree& tree) {
    for (const NameRecord* rec : tree.AllRecords()) {
      if (rec->route.IsLocal()) {
        continue;
      }
      if (rec->route.next_hop_inr == peer) {
        via.push_back(rec->announcer);
      } else if (vspaces_->IsDeadReplica(rec->route.next_hop_inr)) {
        // Orphan: the route points at a replica currently believed dead, so
        // no digest will ever renew it by route. The survivors collectively
        // keep the dead member's names alive (that is the retention
        // contract), so any live peer's proof-of-quiescence extends the
        // lease too. Renewal stops the moment the next hop is pardoned —
        // then the normal by-route lease (or expiry) takes over.
        orphans.push_back(rec->announcer);
      }
    }
  });
  const TimePoint lease = executor_->Now() + Seconds(config_.replica_lifetime_s);
  for (const AnnouncerId& id : via) {
    store.RefreshExpiry(vspace, id, lease);
  }
  for (const AnnouncerId& id : orphans) {
    store.RefreshExpiry(vspace, id, lease);
  }
  if (!via.empty()) {
    metrics_->Increment("replication.leases_renewed", via.size());
  }
  if (!orphans.empty()) {
    metrics_->Increment("replica.orphan_leases_renewed", orphans.size());
  }
}

void ReplicationAgent::PurgeUnseenVia(const NodeAddress& peer, const std::string& vspace,
                                      const std::set<AnnouncerId>& seen) {
  ShardedNameTree& store = vspaces_->store();
  std::vector<AnnouncerId> stale;
  store.ForEachShardTree(vspace, [&](const NameTree& tree) {
    for (const NameRecord* rec : tree.AllRecords()) {
      if (!rec->route.IsLocal() && rec->route.next_hop_inr == peer &&
          seen.count(rec->announcer) == 0) {
        stale.push_back(rec->announcer);
      }
    }
  });
  for (const AnnouncerId& id : stale) {
    // Remove() journals a delete, so the purge propagates to OUR neighbors
    // on their next digest round — snapshot repair crosses the overlay too.
    if (store.Remove(vspace, id)) {
      INS_LOG(kDebug) << "replication: " << self_.ToString() << " snapshot-purged "
                      << id.ToString() << " in '" << vspace << "' (unseen via "
                      << peer.ToString() << ")";
      metrics_->Increment("replication.snapshot_purged");
    }
  }
}

}  // namespace ins
