#include "ins/inr/replication.h"

#include <algorithm>
#include <limits>

#include "ins/common/logging.h"

namespace ins {

ReplicationAgent::ReplicationAgent(Executor* executor, SendFn send, NodeAddress self,
                                   VspaceManager* vspaces, TopologyManager* topology,
                                   NameDiscovery* discovery, MetricsRegistry* metrics,
                                   ReplicationConfig config)
    : executor_(executor),
      send_(std::move(send)),
      self_(self),
      vspaces_(vspaces),
      topology_(topology),
      discovery_(discovery),
      metrics_(metrics),
      config_(config) {}

ReplicationAgent::~ReplicationAgent() { Stop(); }

void ReplicationAgent::Start() {
  if (!config_.enabled || running_) {
    return;
  }
  running_ = true;
  digest_task_ = executor_->ScheduleAfter(config_.digest_interval, [this] { DigestTick(); });
  retry_task_ = executor_->ScheduleAfter(config_.transfer_timeout, [this] { RetryTick(); });
}

void ReplicationAgent::Stop() {
  running_ = false;
  executor_->Cancel(digest_task_);
  executor_->Cancel(retry_task_);
  digest_task_ = retry_task_ = kInvalidTaskId;
  peers_.clear();
}

void ReplicationAgent::DigestTick() {
  SendDigests();
  digest_task_ = executor_->ScheduleAfter(config_.digest_interval, [this] { DigestTick(); });
}

void ReplicationAgent::SendDigests() {
  JournalDigest digest;
  digest.from = self_;
  for (const std::string& vspace : vspaces_->RoutedSpaces()) {
    digest.items.push_back({vspace, vspaces_->store().JournalHead(vspace)});
  }
  for (const NodeAddress& peer : topology_->NeighborAddresses()) {
    metrics_->Increment("replication.digests_sent");
    send_(peer, Envelope{MessageBody(digest)});
  }
}

void ReplicationAgent::RetryTick() {
  const TimePoint now = executor_->Now();
  for (auto& [key, ps] : peers_) {
    if (!ps.awaiting || now < ps.deadline) {
      continue;
    }
    if (ps.retries >= config_.max_transfer_retries) {
      metrics_->Increment("replication.transfer_aborts");
      AbortTransfer(ps);
      continue;
    }
    // Restart the whole transfer: the server regenerates every chunk, so the
    // sequence cursor and any partial snapshot inventory reset with it.
    ++ps.retries;
    ps.next_seq = 0;
    ps.snapshot_seen.clear();
    ps.deadline = now + config_.transfer_timeout;
    metrics_->Increment("replication.transfer_retries");
    SendRequest(key.first, key.second, ps);
  }
  retry_task_ = executor_->ScheduleAfter(config_.transfer_timeout, [this] { RetryTick(); });
}

void ReplicationAgent::AbortTransfer(PeerSpace& ps) {
  ps.awaiting = false;
  ps.full = false;
  ps.next_seq = 0;
  ps.retries = 0;
  ps.snapshot_seen.clear();
}

void ReplicationAgent::ForgetPeer(const NodeAddress& peer) {
  for (auto it = peers_.begin(); it != peers_.end();) {
    if (it->first.first == peer) {
      it = peers_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t ReplicationAgent::AppliedSerial(const NodeAddress& peer,
                                         const std::string& vspace) const {
  auto it = peers_.find({peer, vspace});
  return it == peers_.end() ? 0 : it->second.applied_serial;
}

bool ReplicationAgent::TransferInFlight() const {
  for (const auto& [key, ps] : peers_) {
    if (ps.awaiting) {
      return true;
    }
  }
  return false;
}

void ReplicationAgent::HandleDigest(const NodeAddress& src, const JournalDigest& digest) {
  if (!config_.enabled || !running_) {
    return;
  }
  if (!topology_->IsNeighbor(digest.from)) {
    metrics_->Increment("replication.non_neighbor_messages");
    return;
  }
  metrics_->Increment("replication.digests_received");
  for (const JournalDigest::Item& item : digest.items) {
    if (!vspaces_->Routes(item.vspace)) {
      continue;
    }
    PeerSpace& ps = peers_[{src, item.vspace}];
    if (item.serial == ps.applied_serial) {
      // Current: the digest is the liveness lease for everything we route
      // via this peer — the replacement for per-record re-announcement.
      if (!ps.awaiting) {
        RefreshReplicasVia(src, item.vspace);
      }
      continue;
    }
    if (ps.awaiting) {
      continue;  // one outstanding transfer per (peer, vspace)
    }
    if (item.serial > ps.applied_serial) {
      StartTransfer(src, item.vspace, ps, /*full=*/false);
    } else {
      // Serial regression: the peer restarted with a fresh journal. Our
      // cursor is meaningless — reset and take a snapshot.
      metrics_->Increment("replication.serial_regressions");
      ps.applied_serial = 0;
      StartTransfer(src, item.vspace, ps, /*full=*/true);
    }
  }
}

void ReplicationAgent::StartTransfer(const NodeAddress& peer, const std::string& vspace,
                                     PeerSpace& ps, bool full) {
  ps.awaiting = true;
  ps.full = full;
  ps.next_seq = 0;
  ps.retries = 0;
  ps.snapshot_seen.clear();
  ps.behind_since = executor_->Now();
  ps.deadline = executor_->Now() + config_.transfer_timeout;
  SendRequest(peer, vspace, ps);
}

void ReplicationAgent::SendRequest(const NodeAddress& peer, const std::string& vspace,
                                   const PeerSpace& ps) {
  JournalDeltaRequest req;
  req.from = self_;
  req.vspace = vspace;
  req.after_serial = ps.applied_serial;
  req.full = ps.full;
  metrics_->Increment("replication.delta_requests_sent");
  send_(peer, Envelope{MessageBody(std::move(req))});
}

uint32_t ReplicationAgent::RemainingLifetimeS(TimePoint expires) const {
  const TimePoint now = executor_->Now();
  if (expires <= now) {
    return 0;
  }
  return static_cast<uint32_t>((expires - now).count() / 1000000);
}

void ReplicationAgent::HandleDeltaRequest(const NodeAddress& src,
                                          const JournalDeltaRequest& req) {
  if (!config_.enabled || !running_) {
    return;
  }
  metrics_->Increment("replication.delta_requests_received");
  if (!vspaces_->Routes(req.vspace)) {
    // Delegated away since the digest; the requester's transfer times out
    // and the next digest round (without this vspace) clears the confusion.
    metrics_->Increment("replication.requests_unrouted_space");
    return;
  }
  ShardedNameTree& store = vspaces_->store();
  const NameJournal* journal = store.journal(req.vspace);

  bool snapshot = req.full || journal == nullptr;
  std::vector<JournalEntry> raw;
  if (!snapshot &&
      !journal->ReadSince(req.after_serial, std::numeric_limits<size_t>::max(), &raw)) {
    // The requester's cursor fell off the ring: history is gone, fall back
    // to the full snapshot transfer.
    raw.clear();
    snapshot = true;
  }

  std::vector<JournalDeltaResponse::Entry> entries;
  uint64_t to_serial = 0;
  if (snapshot) {
    metrics_->Increment("replication.snapshots_sent");
    to_serial = journal == nullptr ? 0 : journal->head_serial();
    store.ForEachShardTree(req.vspace, [&](const NameTree& tree) {
      for (const NameRecord* rec : tree.AllRecords()) {
        if (!rec->route.IsLocal() && rec->route.next_hop_inr == src) {
          continue;  // split horizon: never hand records back to their source
        }
        JournalDeltaResponse::Entry e;
        e.op = static_cast<uint8_t>(JournalOp::kUpsert);
        e.name_text = tree.ExtractName(rec).ToString();
        e.announcer = rec->announcer;
        e.endpoint = rec->endpoint;
        e.app_metric = rec->app_metric;
        e.route_metric = rec->route.overlay_metric;
        e.lifetime_s = RemainingLifetimeS(rec->expires);
        e.version = rec->version;
        entries.push_back(std::move(e));
      }
    });
  } else {
    to_serial = raw.empty() ? journal->head_serial() : raw.back().serial;
    entries.reserve(raw.size());
    for (const JournalEntry& je : raw) {
      JournalDeltaResponse::Entry e;
      e.op = static_cast<uint8_t>(je.op);
      e.announcer = je.announcer;
      if (je.op == JournalOp::kUpsert) {
        e.name_text = je.name_text;
        e.endpoint = je.endpoint;
        e.app_metric = je.app_metric;
        e.route_metric = je.route_metric;
        e.version = je.version;
        // The captured expiry is stale the moment a soft-state refresh lands
        // (refreshes are not journaled); serve the CURRENT record's remaining
        // lifetime when it is still alive. A dead record keeps its captured
        // (lapsed) expiry — a later delete/expire entry in this same delta
        // removes it at the receiver anyway.
        std::optional<NameRecord> live = store.Find(req.vspace, je.announcer);
        e.lifetime_s = RemainingLifetimeS(live.has_value() ? live->expires : je.expires);
      }
      entries.push_back(std::move(e));
    }
    metrics_->Increment("replication.delta_entries_sent", entries.size());
  }
  SendChunked(src, req.vspace, snapshot, to_serial, std::move(entries));
}

void ReplicationAgent::SendChunked(const NodeAddress& peer, const std::string& vspace,
                                   bool snapshot, uint64_t to_serial,
                                   std::vector<JournalDeltaResponse::Entry> entries) {
  const size_t per_chunk = std::max<size_t>(1, config_.max_entries_per_response);
  uint32_t seq = 0;
  size_t i = 0;
  do {
    JournalDeltaResponse resp;
    resp.from = self_;
    resp.vspace = vspace;
    resp.snapshot = snapshot;
    resp.to_serial = to_serial;
    resp.seq = seq++;
    const size_t end = std::min(entries.size(), i + per_chunk);
    resp.entries.assign(std::make_move_iterator(entries.begin() + static_cast<long>(i)),
                        std::make_move_iterator(entries.begin() + static_cast<long>(end)));
    i = end;
    resp.last = i >= entries.size();
    send_(peer, Envelope{MessageBody(std::move(resp))});
  } while (i < entries.size());
}

void ReplicationAgent::HandleDeltaResponse(const NodeAddress& src,
                                           const JournalDeltaResponse& resp) {
  if (!config_.enabled || !running_) {
    return;
  }
  auto it = peers_.find({src, resp.vspace});
  if (it == peers_.end() || !it->second.awaiting) {
    metrics_->Increment("replication.unexpected_responses");
    return;  // duplicate, or a chunk of a transfer we already aborted
  }
  PeerSpace& ps = it->second;
  if (resp.seq != ps.next_seq) {
    // A chunk vanished (UDP): this transfer cannot complete. Leave it
    // awaiting; the retry tick re-requests the whole thing.
    metrics_->Increment("replication.chunk_gaps");
    return;
  }
  if (ps.next_seq == 0) {
    // The server decides delta-vs-snapshot (our cursor may have fallen off
    // its ring); adopt its choice on the first chunk.
    ps.full = resp.snapshot;
  } else if (resp.snapshot != ps.full) {
    metrics_->Increment("replication.chunk_gaps");
    return;  // interleaved chunks of two different transfers
  }

  std::vector<NameUpdateEntry> upserts;
  for (const JournalDeltaResponse::Entry& e : resp.entries) {
    const JournalOp op = static_cast<JournalOp>(e.op);
    if (op == JournalOp::kUpsert) {
      if (ps.full) {
        ps.snapshot_seen.insert(e.announcer);
      }
      NameUpdateEntry u;
      u.name_text = e.name_text;
      u.announcer = e.announcer;
      u.endpoint = e.endpoint;
      u.app_metric = e.app_metric;
      u.route_metric = e.route_metric;
      u.lifetime_s = e.lifetime_s;
      u.version = e.version;
      upserts.push_back(std::move(u));
    } else {
      // Tombstone: only meaningful for state we route via the sender — a
      // record reached over another path (or our own local one) has its own
      // journal feed and must not be killed by this peer's history.
      std::optional<NameRecord> rec = vspaces_->store().Find(resp.vspace, e.announcer);
      if (rec.has_value() && !rec->route.IsLocal() && rec->route.next_hop_inr == src) {
        if (vspaces_->store().Remove(resp.vspace, e.announcer)) {
          metrics_->Increment("replication.tombstones_applied");
        }
      }
    }
  }
  if (!upserts.empty()) {
    // The delta rides the same distance-vector acceptance rules as a
    // NameUpdate (local wins, better path adopted, echoes ignored) and
    // triggers onward propagation, so repair crosses the overlay hop by hop.
    const size_t applied = discovery_->ApplyReplicatedEntries(src, resp.vspace, upserts);
    metrics_->Increment("replication.delta_entries_applied", applied);
  }
  ps.next_seq++;
  if (!resp.last) {
    ps.deadline = executor_->Now() + config_.transfer_timeout;  // progress
    return;
  }

  if (ps.full) {
    metrics_->Increment("replication.snapshots_applied");
    PurgeUnseenVia(src, resp.vspace, ps.snapshot_seen);
  }
  ps.applied_serial = resp.to_serial;
  metrics_->RecordDuration("replication.catchup_us", executor_->Now() - ps.behind_since);
  AbortTransfer(ps);  // transfer done: reset the state machine
  // The records untouched by this transfer still hold their old leases; the
  // digest that triggered the transfer could not refresh them (we were
  // behind), so re-arm now that we are current.
  RefreshReplicasVia(src, resp.vspace);
}

void ReplicationAgent::RefreshReplicasVia(const NodeAddress& peer, const std::string& vspace) {
  ShardedNameTree& store = vspaces_->store();
  std::vector<AnnouncerId> via;
  store.ForEachShardTree(vspace, [&](const NameTree& tree) {
    for (const NameRecord* rec : tree.AllRecords()) {
      if (!rec->route.IsLocal() && rec->route.next_hop_inr == peer) {
        via.push_back(rec->announcer);
      }
    }
  });
  const TimePoint lease = executor_->Now() + Seconds(config_.replica_lifetime_s);
  for (const AnnouncerId& id : via) {
    store.RefreshExpiry(vspace, id, lease);
  }
  if (!via.empty()) {
    metrics_->Increment("replication.leases_renewed", via.size());
  }
}

void ReplicationAgent::PurgeUnseenVia(const NodeAddress& peer, const std::string& vspace,
                                      const std::set<AnnouncerId>& seen) {
  ShardedNameTree& store = vspaces_->store();
  std::vector<AnnouncerId> stale;
  store.ForEachShardTree(vspace, [&](const NameTree& tree) {
    for (const NameRecord* rec : tree.AllRecords()) {
      if (!rec->route.IsLocal() && rec->route.next_hop_inr == peer &&
          seen.count(rec->announcer) == 0) {
        stale.push_back(rec->announcer);
      }
    }
  });
  for (const AnnouncerId& id : stale) {
    // Remove() journals a delete, so the purge propagates to OUR neighbors
    // on their next digest round — snapshot repair crosses the overlay too.
    if (store.Remove(vspace, id)) {
      metrics_->Increment("replication.snapshot_purged");
    }
  }
}

}  // namespace ins
