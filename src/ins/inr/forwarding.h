// The forwarding agent: late binding of intentional names (paper §2, §2.3).
//
// Every data packet is resolved against the name-tree at message delivery
// time, so clients keep communicating with the right end-nodes even as
// name-to-address mappings change mid-session:
//
//  * early binding (B=1): the resolver answers with the matching network
//    locations and metrics — the DNS-like interface;
//  * intentional anycast (D=any): the packet is tunneled to exactly one
//    matching destination, the one with the least application-advertised
//    metric;
//  * intentional multicast (D=all): the packet is forwarded along the
//    overlay to every matching destination (one copy per next-hop INR,
//    direct delivery to locally attached ones).
//
// Packets for a virtual space this resolver does not route are tunneled to
// the owning resolver (DSR-resolved, cached). A hop limit bounds overlay
// traversal; the packet cache implements the §3.2 caching extension.

#ifndef INS_INR_FORWARDING_H_
#define INS_INR_FORWARDING_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ins/common/executor.h"
#include "ins/common/metrics.h"
#include "ins/common/trace.h"
#include "ins/inr/packet_cache.h"
#include "ins/inr/vspace.h"
#include "ins/overlay/topology.h"
#include "ins/wire/messages.h"
#include "ins/wire/name_decoder.h"

namespace ins {

// Deadline charge per overlay hop, in milliseconds. The simulated overlay
// links are fast relative to queueing, so the hop cost is the 1ms floor; what
// actually consumes budgets under load is the admission controller charging
// time spent queued.
inline constexpr uint32_t kHopDeadlineCostMs = 1;

// Every drop the forwarder (or the admission controller in front of it) takes
// is accounted as forwarding.drop.<reason>, so
// MetricsRegistry::FamilyTotal("forwarding.drop.") is the complete drop count
// without the caller enumerating reasons. The reasons are a closed enum: each
// one increments its counter AND records a kDropped trace event with the same
// suffix as its detail, which is what lets the harness explain a lost packet.
// Adding a drop site means adding an enumerator here (trace_test fails on a
// forwarding.drop.* counter whose suffix is not in this list).
enum class ForwardingDropReason : size_t {
  kHopLimit = 0,
  kDeadline,
  kBadDestination,
  kNoMatch,
  kVspaceUnresolved,
  kShedClass0,
  kShedClass1,
  kShedClass2,
};

inline constexpr const char* kForwardingDropReasonNames[] = {
    "hop_limit",         "deadline",    "bad_destination", "no_match",
    "vspace_unresolved", "shed_class0", "shed_class1",     "shed_class2",
};
inline constexpr size_t kForwardingDropReasonCount =
    sizeof(kForwardingDropReasonNames) / sizeof(kForwardingDropReasonNames[0]);

constexpr const char* ForwardingDropReasonName(ForwardingDropReason reason) {
  return kForwardingDropReasonNames[static_cast<size_t>(reason)];
}

// Early-binding requests carry their request id and reply-to address at the
// head of the packet payload, so any resolver along the path can answer
// directly to the requester. Helpers shared with the client library:
Bytes EncodeEarlyBindingPayload(uint64_t request_id, const NodeAddress& reply_to);
Result<std::pair<uint64_t, NodeAddress>> DecodeEarlyBindingPayload(const Bytes& payload);

class ForwardingAgent {
 public:
  // `trace` may be null (standalone tests): sampled packets then still
  // forward normally, they just leave no events behind.
  ForwardingAgent(Executor* executor, SendFn send, NodeAddress self, VspaceManager* vspaces,
                  TopologyManager* topology, PacketCache* cache, MetricsRegistry* metrics,
                  TraceRing* trace = nullptr);

  // Entry point for every kData envelope this resolver receives; `src` is
  // the datagram source (a client or a neighbor INR).
  void HandleData(const NodeAddress& src, const Packet& packet);

  // Accounts one dropped packet: counter plus (for sampled packets) the
  // kDropped trace event. Public because the drop family spans layers — the
  // INR's dispatch path charges queueing time against deadlines and drops
  // here too.
  void NoteDrop(const Packet& packet, ForwardingDropReason reason);

 private:
  // Per-shard partial resolution result, reduced inside the (possibly
  // parallel) shard scan and route-merged afterwards on the protocol thread.
  // Only the fields the packet's delivery mode needs are filled.
  struct ShardPartial {
    size_t matches = 0;
    std::vector<NameRecord> records;     // early binding: all matches
    std::optional<NameRecord> best;      // anycast: shard-local argmin
    std::vector<NameRecord> locals;      // multicast: locally attached matches
    std::vector<NodeAddress> next_hops;  // multicast: split-horizon-filtered hops
    size_t rescued = 0;                  // routed via a dead replica, served directly
  };

  // `dst` is the packet's destination name, decoded exactly once per packet
  // in HandleData (via the memoizing wire decoder) and threaded through.
  void ResolveAndForward(const NodeAddress& src, const Packet& packet,
                         const NameSpecifier& dst);
  void ForwardToVspaceOwner(const Packet& packet, const std::string& vspace);
  void HandleEarlyBinding(const NodeAddress& src, const Packet& packet,
                          std::vector<NameRecord> records);
  void HandleAnycast(const Packet& packet, const NameRecord& best);
  void HandleMulticast(const Packet& packet, std::vector<ShardPartial>& parts);
  void DeliverLocal(const Packet& packet, const NameRecord& record);
  void ForwardToInr(const Packet& packet, const NodeAddress& next_hop);
  bool TryAnswerFromCache(const Packet& packet, const NameSpecifier& dst);
  void MaybeCache(const Packet& packet);

  // Records a trace event for a sampled packet; no-op (one branch) otherwise.
  void Trace(const Packet& packet, TraceEventKind kind, const char* detail = "",
             NodeAddress peer = {}, uint64_t value = 0);

  Executor* executor_;
  SendFn send_;
  NodeAddress self_;
  VspaceManager* vspaces_;
  TopologyManager* topology_;
  PacketCache* cache_;
  MetricsRegistry* metrics_;
  TraceRing* trace_;

  // Pre-registered handles: the per-packet counters are plain pointer adds,
  // not string-map lookups (the last string work on the data path after the
  // interning of the resolver hot path).
  CounterHandle packets_;
  CounterHandle lookups_;
  CounterHandle anycasts_;
  CounterHandle multicasts_;
  CounterHandle early_bindings_;
  CounterHandle local_deliveries_;
  CounterHandle tunneled_;
  CounterHandle cross_vspace_;
  CounterHandle cache_answers_;
  CounterHandle cache_inserts_;
  CounterHandle dead_replica_reroutes_;
  CounterHandle drops_[kForwardingDropReasonCount];
  // Wall-clock time of the name-tree resolution step, in microseconds (the
  // simulator's virtual clock does not advance inside a lookup).
  HistogramHandle lookup_us_;
  // Protocol-thread-only memo of recent wire-text parses: a forwarding path
  // sees the same destination text per packet, hop after hop.
  NameDecoder decoder_;
};

}  // namespace ins

#endif  // INS_INR_FORWARDING_H_
