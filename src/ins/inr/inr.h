// The Intentional Name Resolver node (paper §2, §4).
//
// An Inr binds one Transport and composes the subsystems the paper's Java
// implementation calls Node, NameTree, NodeListener, ForwardingAgent and
// NameDiscovery: it decodes every incoming datagram and dispatches it to the
// name-discovery protocol, the forwarding agent, the overlay topology
// manager, the virtual-space manager, or the load balancer. It also answers
// client name-discovery queries and INR-pings directly.
//
// The same class runs unchanged under the discrete-event simulator (virtual
// time) and over real UDP (the examples): all environment access goes
// through the Executor and Transport interfaces.

#ifndef INS_INR_INR_H_
#define INS_INR_INR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ins/common/executor.h"
#include "ins/common/flight_recorder.h"
#include "ins/common/metrics.h"
#include "ins/common/timeseries.h"
#include "ins/common/trace.h"
#include "ins/common/transport.h"
#include "ins/common/worker_pool.h"
#include "ins/inr/admission.h"
#include "ins/inr/forwarding.h"
#include "ins/inr/load_balancer.h"
#include "ins/inr/name_discovery.h"
#include "ins/inr/packet_cache.h"
#include "ins/inr/replication.h"
#include "ins/inr/vspace.h"
#include "ins/overlay/ping.h"
#include "ins/overlay/topology.h"

namespace ins {

// The paper's NetworkManagement service, resolver side: when enabled, the
// resolver periodically advertises [service=netmon][node=<addr>] into its own
// name tree. The advertisement propagates like any other name, so the netmon
// app discovers every resolver from a single DiscoveryRequest and polls each
// one with MetricsRequest. Off by default: the self-advertisement changes
// record counts, which seed tests and benches assert on.
struct NetmonConfig {
  bool advertise = false;
  std::string vspace;  // "" = the default space
  Duration refresh = Seconds(15);
  uint32_t lifetime_s = 45;  // soft-state lifetime of the advertisement
};

struct InrConfig {
  NodeAddress dsr;
  // Virtual spaces this resolver routes from the start. "" is the default
  // space used by names without a [vspace=...] attribute.
  std::vector<std::string> vspaces = {""};
  DiscoveryConfig discovery;
  TopologyConfig topology;  // .dsr is filled from `dsr` if unset
  LoadBalancerConfig load_balancer;
  // Overload control on the ingress path; disabled by default (seed
  // behaviour: every message dispatches inline).
  AdmissionConfig admission;
  // How often the admission load signal is fed to the transport's pacer
  // (Transport::OnLoadSignal); only runs while admission is enabled. Zero
  // disables the feedback loop.
  Duration pacer_feedback_interval = Milliseconds(100);
  // Journaled delta replication with anti-entropy digests; disabled by
  // default (seed behaviour: periodic full re-announcement only). Enabling it
  // turns on store journaling and suppresses the periodic refresh storm.
  ReplicationConfig replication;
  size_t cache_capacity = 128;
  // Worker threads for fanning lookups out across shards of a space; 0 (the
  // default) resolves inline on the protocol thread — the simulator mode.
  size_t lookup_threads = 0;
  // Shards the default space "" is hash-split into. 1 (the default) keeps
  // the seed's one-tree-per-space layout and exact lookup semantics.
  size_t fallback_shards = 1;
  // Capacity of the per-node trace-event ring (entries, not bytes). Sampled
  // packets append events here; the harness merges rings into journeys.
  size_t trace_ring_capacity = 1024;
  // Capacity of the always-on flight recorder (system events: shed on/off,
  // replica death, overlay edge churn, restarts). Same overwrite-oldest
  // discipline as the trace ring.
  size_t flight_recorder_capacity = 256;
  // Retained metrics samples for incremental (delta) metrics polling. Each
  // MetricsDeltaRequest appends one snapshot; a client whose baseline fell
  // out of this window gets a full snapshot again.
  size_t metrics_timeseries_capacity = 64;
  NetmonConfig netmon;
};

class Inr {
 public:
  Inr(Executor* executor, Transport* transport, InrConfig config);
  ~Inr();

  Inr(const Inr&) = delete;
  Inr& operator=(const Inr&) = delete;

  // Joins the overlay and starts the protocol timers.
  void Start();
  // Graceful shutdown: leaves the overlay, stops timers, unregisters.
  void Stop();
  // Failure injection: dies silently — no PeerClose, no DSR unregister.
  // Peers must detect the failure via missed keepalives and the DSR entry
  // must expire by soft state.
  void Crash();
  bool running() const { return running_; }

  NodeAddress address() const { return transport_->local_address(); }

  // Subsystem access (tests, benches, and the network-management view).
  VspaceManager& vspaces() { return *vspaces_; }
  NameDiscovery& discovery() { return *discovery_; }
  ForwardingAgent& forwarding() { return *forwarding_; }
  TopologyManager& topology() { return *topology_; }
  LoadBalancer& load_balancer() { return *load_balancer_; }
  ReplicationAgent& replication() { return *replication_; }
  PacketCache& cache() { return *cache_; }
  PingAgent& pings() { return *ping_agent_; }
  AdmissionController& admission() { return *admission_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceRing& trace_ring() { return trace_ring_; }
  const TraceRing& trace_ring() const { return trace_ring_; }
  FlightRecorder& flight_recorder() { return flight_; }
  const FlightRecorder& flight_recorder() const { return flight_; }
  MetricsTimeSeries& timeseries() { return timeseries_; }
  const MetricsTimeSeries& timeseries() const { return timeseries_; }

  // Renders the resolver's state (name-trees, neighbors, counters) — the
  // moral equivalent of the paper's NetworkManagement GUI.
  std::string DebugString() const;

 private:
  void OnMessage(const NodeAddress& src, const Bytes& data);
  // The post-admission dispatch chain; `queued` is the time the message spent
  // in the admission queues (zero with admission disabled) and is charged
  // against data packets' deadline budgets.
  void DispatchEnvelope(const NodeAddress& src, const Envelope& env, Duration queued);
  void HandleDiscoveryRequest(const NodeAddress& src, const DiscoveryRequest& req);
  void HandleMetricsRequest(const NodeAddress& src, const MetricsRequest& req);
  void HandleMetricsDeltaRequest(const NodeAddress& src, const MetricsDeltaRequest& req);
  // Updates the inventory gauges (inr.names / inr.neighbors / inr.vspaces)
  // that only need to be current when a snapshot leaves the node.
  void RefreshInventoryGauges();
  // Periodic [service=netmon] self-advertisement (NetmonConfig.advertise).
  void AdvertiseNetmon();
  // Feeds the admission load signal into the transport's pacer and
  // reschedules itself (InrConfig.pacer_feedback_interval).
  void PacerFeedbackTick();

  Executor* executor_;
  Transport* transport_;
  InrConfig config_;
  MetricsRegistry metrics_;
  TraceRing trace_ring_;
  FlightRecorder flight_;
  MetricsTimeSeries timeseries_;
  // Whether the pacer-feedback loop last reported a load signal above the
  // backoff knee; edges of this bit become flight-recorder events.
  bool pacer_backing_off_ = false;
  // Cached address().ToString(): the log-context tag installed around every
  // message this resolver handles.
  std::string log_tag_;
  bool running_ = false;
  // Spaces this resolver routes because a replica-set primary recruited it
  // (ReplicaInvite), as opposed to configuration or delegation. Only these
  // may be relinquished when a DSR set answer shows the set full without us.
  std::set<std::string> invited_spaces_;
  TaskId netmon_task_ = kInvalidTaskId;
  TaskId pacer_task_ = kInvalidTaskId;
  uint64_t netmon_version_ = 0;
  CounterHandle messages_;
  CounterHandle bytes_received_;

  // Created before vspaces_ (the store keeps a plain pointer to it) and
  // destroyed after it.
  std::unique_ptr<WorkerPool> lookup_pool_;
  std::unique_ptr<PingAgent> ping_agent_;
  std::unique_ptr<TopologyManager> topology_;
  std::unique_ptr<VspaceManager> vspaces_;
  std::unique_ptr<PacketCache> cache_;
  std::unique_ptr<NameDiscovery> discovery_;
  std::unique_ptr<ForwardingAgent> forwarding_;
  std::unique_ptr<LoadBalancer> load_balancer_;
  std::unique_ptr<ReplicationAgent> replication_;
  std::unique_ptr<AdmissionController> admission_;
};

}  // namespace ins

#endif  // INS_INR_INR_H_
