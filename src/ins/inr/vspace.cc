#include "ins/inr/vspace.h"

namespace ins {

VspaceManager::VspaceManager(Executor* executor, SendFn send, NodeAddress dsr,
                             MetricsRegistry* metrics, ShardedNameTree::Options store_options)
    : executor_(executor),
      send_(std::move(send)),
      dsr_(dsr),
      metrics_(metrics),
      store_(std::move(store_options)) {}

void VspaceManager::AddSpace(const std::string& vspace) {
  if (store_.Routes(vspace)) {
    return;
  }
  store_.AddSpace(vspace);
  owner_cache_.erase(vspace);  // we are the owner now
  metrics_->SetGauge("vspace.routed", static_cast<int64_t>(store_.RoutedSpaces().size()));
  if (on_spaces_changed) {
    on_spaces_changed();
  }
}

bool VspaceManager::RemoveSpace(const std::string& vspace) {
  if (!store_.RemoveSpace(vspace)) {
    return false;
  }
  metrics_->SetGauge("vspace.routed", static_cast<int64_t>(store_.RoutedSpaces().size()));
  if (on_spaces_changed) {
    on_spaces_changed();
  }
  return true;
}

std::string VspaceManager::VspaceOf(const NameSpecifier& name) {
  return name.GetValue({kVspaceAttribute}).value_or("");
}

void VspaceManager::ResolveOwner(const std::string& vspace, ResolveCallback cb) {
  auto cached = owner_cache_.find(vspace);
  if (cached != owner_cache_.end()) {
    metrics_->Increment("vspace.owner_cache_hits");
    cb(cached->second);
    return;
  }
  metrics_->Increment("vspace.owner_cache_misses");
  bool in_flight = pending_callbacks_.count(vspace) > 0;
  pending_callbacks_[vspace].push_back(std::move(cb));
  if (in_flight) {
    return;  // coalesce with the outstanding DSR query
  }
  uint64_t id = next_request_id_++;
  pending_by_id_[id] = vspace;
  DsrVspaceRequest req;
  req.request_id = id;
  req.vspace = vspace;
  send_(dsr_, Envelope{MessageBody(std::move(req))});
}

void VspaceManager::HandleDsrVspaceResponse(const DsrVspaceResponse& resp) {
  auto idit = pending_by_id_.find(resp.request_id);
  if (idit == pending_by_id_.end()) {
    return;  // stale or duplicate response
  }
  std::string vspace = idit->second;
  pending_by_id_.erase(idit);

  if (resp.inr.IsValid()) {
    owner_cache_[vspace] = resp.inr;
  }
  auto cbit = pending_callbacks_.find(vspace);
  if (cbit == pending_callbacks_.end()) {
    return;
  }
  std::vector<ResolveCallback> cbs = std::move(cbit->second);
  pending_callbacks_.erase(cbit);
  for (ResolveCallback& cb : cbs) {
    cb(resp.inr);
  }
}

void VspaceManager::InvalidateOwner(const std::string& vspace) {
  owner_cache_.erase(vspace);
}

}  // namespace ins
