#include "ins/inr/vspace.h"

namespace ins {

VspaceManager::VspaceManager(Executor* executor, SendFn send, NodeAddress dsr,
                             MetricsRegistry* metrics, ShardedNameTree::Options store_options)
    : executor_(executor),
      send_(std::move(send)),
      dsr_(dsr),
      metrics_(metrics),
      store_(std::move(store_options)) {}

void VspaceManager::AddSpace(const std::string& vspace) {
  if (store_.Routes(vspace)) {
    return;
  }
  store_.AddSpace(vspace);
  owner_cache_.erase(vspace);  // we are the owner now
  metrics_->SetGauge("vspace.routed", static_cast<int64_t>(store_.RoutedSpaces().size()));
  if (on_spaces_changed) {
    on_spaces_changed();
  }
}

bool VspaceManager::RemoveSpace(const std::string& vspace) {
  if (!store_.RemoveSpace(vspace)) {
    return false;
  }
  metrics_->SetGauge("vspace.routed", static_cast<int64_t>(store_.RoutedSpaces().size()));
  if (on_spaces_changed) {
    on_spaces_changed();
  }
  return true;
}

std::string VspaceManager::VspaceOf(const NameSpecifier& name) {
  return name.GetValue({kVspaceAttribute}).value_or("");
}

void VspaceManager::EnableReplicaMode(Duration cache_ttl, size_t replica_k) {
  replica_mode_ = true;
  replica_cache_ttl_ = cache_ttl;
  replica_k_ = replica_k;
}

NodeAddress VspaceManager::PickLive(const OwnerEntry& entry) {
  for (const NodeAddress& replica : entry.replicas) {
    if (dead_replicas_.count(replica) == 0) {
      if (!entry.replicas.empty() && !(replica == entry.replicas.front())) {
        metrics_->Increment("availability.failovers");
      }
      return replica;
    }
  }
  return kInvalidAddress;
}

void VspaceManager::NoteReplicaDead(const NodeAddress& inr) {
  if (dead_replicas_.insert(inr).second) {
    metrics_->SetGauge("availability.dead_replicas",
                       static_cast<int64_t>(dead_replicas_.size()));
  }
}

void VspaceManager::NoteReplicaAlive(const NodeAddress& inr) {
  if (dead_replicas_.erase(inr) > 0) {
    metrics_->SetGauge("availability.dead_replicas",
                       static_cast<int64_t>(dead_replicas_.size()));
  }
}

std::vector<NodeAddress> VspaceManager::CachedReplicas(const std::string& vspace) const {
  auto it = owner_cache_.find(vspace);
  if (it == owner_cache_.end() || it->second.expires <= executor_->Now()) {
    return {};
  }
  return it->second.replicas;
}

void VspaceManager::ResolveOwner(const std::string& vspace, ResolveCallback cb) {
  auto cached = owner_cache_.find(vspace);
  if (cached != owner_cache_.end()) {
    if (cached->second.expires > executor_->Now()) {
      const NodeAddress live = PickLive(cached->second);
      if (live.IsValid()) {
        metrics_->Increment("vspace.owner_cache_hits");
        cb(live);
        return;
      }
      // Every cached member is believed dead: fall through and re-ask the
      // DSR, which by now has dead reports (or proofs of life) of its own.
    }
    owner_cache_.erase(cached);
  }
  metrics_->Increment("vspace.owner_cache_misses");
  bool in_flight = pending_callbacks_.count(vspace) > 0;
  pending_callbacks_[vspace].push_back(std::move(cb));
  if (in_flight) {
    return;  // coalesce with the outstanding DSR query
  }
  uint64_t id = next_request_id_++;
  pending_by_id_[id] = vspace;
  if (replica_mode_) {
    DsrReplicaSetRequest req;
    req.request_id = id;
    req.vspace = vspace;
    send_(dsr_, Envelope{MessageBody(std::move(req))});
  } else {
    DsrVspaceRequest req;
    req.request_id = id;
    req.vspace = vspace;
    send_(dsr_, Envelope{MessageBody(std::move(req))});
  }
}

void VspaceManager::FinishResolve(std::string vspace, uint64_t request_id,
                                  std::vector<NodeAddress> replicas) {
  pending_by_id_.erase(request_id);
  NodeAddress answer = kInvalidAddress;
  if (!replicas.empty()) {
    // The DSR answers the FULL join-ordered registrant list; the replica set
    // is its first k entries (suspects are already filtered out, so a dead
    // member's slot passes to the next-oldest live registrant).
    if (replica_mode_ && replica_k_ > 0 && replicas.size() > replica_k_) {
      replicas.resize(replica_k_);
    }
    OwnerEntry entry;
    entry.replicas = std::move(replicas);
    entry.expires =
        replica_mode_ ? executor_->Now() + replica_cache_ttl_ : TimePoint::max();
    // The DSR listing a member is a (suspect-filtered) sign of life.
    for (const NodeAddress& replica : entry.replicas) {
      NoteReplicaAlive(replica);
    }
    answer = PickLive(entry);
    owner_cache_[vspace] = std::move(entry);
  }
  auto cbit = pending_callbacks_.find(vspace);
  if (cbit == pending_callbacks_.end()) {
    return;
  }
  std::vector<ResolveCallback> cbs = std::move(cbit->second);
  pending_callbacks_.erase(cbit);
  for (ResolveCallback& cb : cbs) {
    cb(answer);
  }
}

void VspaceManager::HandleDsrVspaceResponse(const DsrVspaceResponse& resp) {
  auto idit = pending_by_id_.find(resp.request_id);
  if (idit == pending_by_id_.end()) {
    return;  // stale or duplicate response
  }
  std::vector<NodeAddress> replicas;
  if (resp.inr.IsValid()) {
    replicas.push_back(resp.inr);
  }
  FinishResolve(idit->second, resp.request_id, std::move(replicas));
}

void VspaceManager::HandleDsrReplicaSetResponse(const DsrReplicaSetResponse& resp) {
  auto idit = pending_by_id_.find(resp.request_id);
  if (idit == pending_by_id_.end()) {
    return;  // stale, duplicate, or a LoadBalancer maintenance response
  }
  FinishResolve(idit->second, resp.request_id, resp.replicas);
}

void VspaceManager::InvalidateOwner(const std::string& vspace) {
  owner_cache_.erase(vspace);
}

}  // namespace ins
