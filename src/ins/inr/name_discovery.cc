#include "ins/inr/name_discovery.h"

#include <algorithm>
#include <cmath>

#include "ins/common/logging.h"
#include "ins/name/parser.h"

namespace ins {

NameDiscovery::NameDiscovery(Executor* executor, SendFn send, NodeAddress self,
                             VspaceManager* vspaces, TopologyManager* topology,
                             MetricsRegistry* metrics, DiscoveryConfig config)
    : executor_(executor),
      send_(std::move(send)),
      self_(self),
      vspaces_(vspaces),
      topology_(topology),
      metrics_(metrics),
      config_(config) {}

NameDiscovery::~NameDiscovery() { Stop(); }

void NameDiscovery::Start() {
  periodic_task_ =
      executor_->ScheduleAfter(config_.update_interval, [this] { PeriodicTick(); });
  expiry_task_ =
      executor_->ScheduleAfter(config_.expiry_sweep_interval, [this] { ExpiryTick(); });
}

void NameDiscovery::Stop() {
  executor_->Cancel(periodic_task_);
  executor_->Cancel(expiry_task_);
  periodic_task_ = expiry_task_ = kInvalidTaskId;
}

void NameDiscovery::HandleAdvertisement(const NodeAddress& src, const Advertisement& ad) {
  metrics_->Increment("discovery.advertisements");
  auto name = ParseNameSpecifier(ad.name_text);
  if (!name.ok()) {
    metrics_->Increment("discovery.bad_advertisements");
    INS_LOG(kDebug) << self_.ToString() << ": bad advertisement from " << src.ToString()
                    << ": " << name.status();
    return;
  }
  std::string vspace = !ad.vspace.empty() ? ad.vspace : VspaceManager::VspaceOf(*name);

  if (!vspaces_->Routes(vspace)) {
    // Forward to the resolver owning the space; if nobody routes it yet,
    // adopt it — services self-configure new spaces into existence.
    Advertisement copy = ad;
    copy.vspace = vspace;
    vspaces_->ResolveOwner(vspace, [this, src, copy = std::move(copy)](
                                       const NodeAddress& owner) {
      if (owner.IsValid() && owner != self_) {
        metrics_->Increment("discovery.advertisements_forwarded");
        send_(owner, Envelope{MessageBody(copy)});
        return;
      }
      vspaces_->AddSpace(copy.vspace);
      HandleAdvertisement(src, copy);
    });
    return;
  }

  uint32_t lifetime = ad.lifetime_s != 0 ? ad.lifetime_s : config_.default_lifetime_s;

  NameRecord rec;
  rec.announcer = ad.announcer;
  rec.endpoint = ad.endpoint;
  rec.app_metric = ad.app_metric;
  rec.route = RouteInfo{};  // locally attached
  rec.expires = executor_->Now() + Seconds(lifetime);
  rec.version = ad.version;

  auto outcome = vspaces_->store().Upsert(vspace, *name, rec);
  metrics_->SetGauge("discovery.names",
                     static_cast<int64_t>(vspaces_->store().RecordCount(vspace)));
  switch (outcome.kind) {
    case NameTree::UpsertOutcome::kIgnored:
      metrics_->Increment("discovery.stale_advertisements");
      return;
    case NameTree::UpsertOutcome::kRefreshed:
      return;  // soft-state refresh; nothing new to say
    case NameTree::UpsertOutcome::kNew:
      metrics_->Increment("discovery.names_discovered");
      if (on_name_discovered) {
        on_name_discovered(vspace, *name, *outcome.record);
      }
      break;
    case NameTree::UpsertOutcome::kChanged:
    case NameTree::UpsertOutcome::kRenamed:
      metrics_->Increment("discovery.names_changed");
      break;
  }

  if (config_.triggered_updates) {
    NameUpdateEntry entry = EntryFromRecord(*outcome.name, *outcome.record);
    PropagateTriggered(vspace, {std::move(entry)}, kInvalidAddress);
  }
}

NameUpdateEntry NameDiscovery::EntryFromRecord(const NameTree& tree,
                                               const NameRecord* rec) const {
  // GET-NAME: reconstruct the specifier from the superposed tree.
  return EntryFromRecord(tree.ExtractName(rec), *rec);
}

NameUpdateEntry NameDiscovery::EntryFromRecord(const NameSpecifier& name,
                                               const NameRecord& rec) const {
  NameUpdateEntry e;
  e.name_text = name.ToString();
  e.announcer = rec.announcer;
  e.endpoint = rec.endpoint;
  e.app_metric = rec.app_metric;
  e.route_metric = rec.route.overlay_metric;
  TimePoint now = executor_->Now();
  auto remaining = rec.expires > now ? rec.expires - now : Duration(0);
  e.lifetime_s = static_cast<uint32_t>(remaining.count() / 1000000);
  e.version = rec.version;
  return e;
}

void NameDiscovery::HandleNameUpdate(const NodeAddress& src, const NameUpdate& update) {
  metrics_->Increment("discovery.updates_received");
  metrics_->Increment("discovery.update_entries_received", update.entries.size());

  if (!vspaces_->Routes(update.vspace)) {
    metrics_->Increment("discovery.updates_unrouted_space");
    return;
  }

  std::vector<NameUpdateEntry> changed;
  for (const NameUpdateEntry& entry : update.entries) {
    auto propagate = ApplyRemoteEntry(src, update.vspace, entry);
    if (propagate.has_value()) {
      changed.push_back(std::move(*propagate));
    }
  }
  metrics_->SetGauge("discovery.names",
                     static_cast<int64_t>(vspaces_->store().RecordCount(update.vspace)));

  if (config_.triggered_updates && !changed.empty()) {
    PropagateTriggered(update.vspace, std::move(changed), src);
  }
}

size_t NameDiscovery::ApplyReplicatedEntries(const NodeAddress& src,
                                             const std::string& vspace,
                                             const std::vector<NameUpdateEntry>& entries) {
  if (!vspaces_->Routes(vspace)) {
    return 0;
  }
  std::vector<NameUpdateEntry> changed;
  for (const NameUpdateEntry& entry : entries) {
    auto propagate = ApplyRemoteEntry(src, vspace, entry);
    if (propagate.has_value()) {
      changed.push_back(std::move(*propagate));
    }
  }
  metrics_->SetGauge("discovery.names",
                     static_cast<int64_t>(vspaces_->store().RecordCount(vspace)));
  const size_t applied = changed.size();
  if (config_.triggered_updates && !changed.empty()) {
    PropagateTriggered(vspace, std::move(changed), src);
  }
  return applied;
}

std::optional<NameUpdateEntry> NameDiscovery::ApplyRemoteEntry(
    const NodeAddress& src, const std::string& vspace, const NameUpdateEntry& entry) {
  auto name = ParseNameSpecifier(entry.name_text);
  if (!name.ok()) {
    metrics_->Increment("discovery.bad_update_entries");
    return std::nullopt;
  }
  if (entry.lifetime_s == 0) {
    return std::nullopt;  // already stale on arrival
  }

  const double link_ms = topology_->LinkMetricMs(src);
  const double new_metric = entry.route_metric + link_ms;

  std::optional<NameRecord> existing = vspaces_->store().Find(vspace, entry.announcer);
  if (existing.has_value()) {
    // Distance-vector acceptance rules for same-version information:
    //  * our own locally attached records always win over echoes;
    //  * refreshes from the current next hop are accepted;
    //  * a strictly better path is adopted;
    //  * equal-version info via a worse path is ignored (split horizon
    //    plus this rule prevents two-hop count-to-infinity loops).
    if (entry.version < existing->version) {
      metrics_->Increment("discovery.stale_update_entries");
      return std::nullopt;
    }
    if (entry.version == existing->version) {
      if (existing->route.IsLocal()) {
        return std::nullopt;
      }
      const bool same_next_hop = existing->route.next_hop_inr == src;
      const double old_metric = existing->route.overlay_metric;
      if (!same_next_hop && new_metric >= old_metric) {
        return std::nullopt;
      }
      if (same_next_hop) {
        // Damp RTT jitter: small metric drift is a refresh, not a change.
        double drift = std::abs(new_metric - old_metric);
        if (drift < config_.metric_change_threshold * std::max(old_metric, 1.0)) {
          vspaces_->store().RefreshExpiry(vspace, entry.announcer,
                                          executor_->Now() + Seconds(entry.lifetime_s));
          return std::nullopt;
        }
      }
    }
  }

  NameRecord rec;
  rec.announcer = entry.announcer;
  rec.endpoint = entry.endpoint;
  rec.app_metric = entry.app_metric;
  rec.route.next_hop_inr = src;
  rec.route.overlay_metric = new_metric;
  rec.expires = executor_->Now() + Seconds(entry.lifetime_s);
  rec.version = entry.version;

  auto outcome = vspaces_->store().Upsert(vspace, *name, rec);
  switch (outcome.kind) {
    case NameTree::UpsertOutcome::kIgnored:
      metrics_->Increment("discovery.stale_update_entries");
      return std::nullopt;
    case NameTree::UpsertOutcome::kRefreshed:
      return std::nullopt;
    case NameTree::UpsertOutcome::kNew:
      metrics_->Increment("discovery.names_discovered");
      if (on_name_discovered) {
        on_name_discovered(vspace, *name, *outcome.record);
      }
      break;
    case NameTree::UpsertOutcome::kChanged:
    case NameTree::UpsertOutcome::kRenamed:
      metrics_->Increment("discovery.names_changed");
      break;
  }
  return EntryFromRecord(*outcome.name, *outcome.record);
}

void NameDiscovery::PropagateTriggered(const std::string& vspace,
                                       std::vector<NameUpdateEntry> entries,
                                       const NodeAddress& except) {
  for (const NodeAddress& peer : topology_->NeighborAddresses()) {
    if (peer == except) {
      continue;  // split horizon towards the source of the information
    }
    // Also split-horizon per entry: never advertise a record back towards
    // its own next hop.
    std::vector<NameUpdateEntry> filtered;
    for (const NameUpdateEntry& e : entries) {
      std::optional<NameRecord> rec = vspaces_->store().Find(vspace, e.announcer);
      if (rec.has_value() && !rec->route.IsLocal() && rec->route.next_hop_inr == peer) {
        continue;
      }
      filtered.push_back(e);
    }
    if (!filtered.empty()) {
      metrics_->Increment("discovery.triggered_updates_sent");
      SendUpdates(peer, vspace, std::move(filtered), /*triggered=*/true);
    }
  }
}

void NameDiscovery::SendUpdates(const NodeAddress& peer, const std::string& vspace,
                                std::vector<NameUpdateEntry> entries, bool triggered) {
  for (size_t i = 0; i < entries.size(); i += config_.max_entries_per_update) {
    NameUpdate u;
    u.vspace = vspace;
    u.triggered = triggered;
    size_t end = std::min(entries.size(), i + config_.max_entries_per_update);
    u.entries.assign(std::make_move_iterator(entries.begin() + static_cast<long>(i)),
                     std::make_move_iterator(entries.begin() + static_cast<long>(end)));
    metrics_->Increment("discovery.update_entries_sent", u.entries.size());
    send_(peer, Envelope{MessageBody(std::move(u))});
  }
}

void NameDiscovery::PublishIndexMetrics() {
  const PostingIndexStats s = vspaces_->store().IndexStatsTotal();
  metrics_->SetGauge("index.lookups", static_cast<int64_t>(s.index_lookups));
  metrics_->SetGauge("index.empty", static_cast<int64_t>(s.empty_lookups));
  metrics_->SetGauge("index.universal", static_cast<int64_t>(s.universal_lookups));
  metrics_->SetGauge("index.fallback.wildcard", static_cast<int64_t>(s.fallback_wildcard));
  metrics_->SetGauge("index.fallback.range", static_cast<int64_t>(s.fallback_range));
  metrics_->SetGauge("index.fallback.union", static_cast<int64_t>(s.fallback_union));
  metrics_->SetGauge("index.plan_cache.hits", static_cast<int64_t>(s.plan_hits));
  metrics_->SetGauge("index.plan_cache.misses", static_cast<int64_t>(s.plan_misses));
  metrics_->SetGauge("index.promotions", static_cast<int64_t>(s.promotions));
  metrics_->SetGauge("index.demotions", static_cast<int64_t>(s.demotions));
  metrics_->SetGauge("index.posting_keys", static_cast<int64_t>(s.posting_keys));
  metrics_->SetGauge("index.bytes", static_cast<int64_t>(s.bytes));
}

void NameDiscovery::PeriodicTick() {
  // Refresh the index.* gauges even when periodic updates are suppressed —
  // the management view should keep reflecting lookup traffic either way.
  PublishIndexMetrics();
  if (periodic_suppressed_) {
    periodic_task_ =
        executor_->ScheduleAfter(config_.update_interval, [this] { PeriodicTick(); });
    return;
  }
  for (const std::string& vspace : vspaces_->RoutedSpaces()) {
    for (const NodeAddress& peer : topology_->NeighborAddresses()) {
      std::vector<NameUpdateEntry> entries;
      vspaces_->store().ForEachShardTree(vspace, [&](const NameTree& tree) {
        for (const NameRecord* rec : tree.AllRecords()) {
          if (!rec->route.IsLocal() && rec->route.next_hop_inr == peer) {
            continue;  // split horizon
          }
          entries.push_back(EntryFromRecord(tree, rec));
        }
      });
      metrics_->Increment("discovery.periodic_updates_sent");
      SendUpdates(peer, vspace, std::move(entries), /*triggered=*/false);
    }
  }
  periodic_task_ =
      executor_->ScheduleAfter(config_.update_interval, [this] { PeriodicTick(); });
}

void NameDiscovery::ExpiryTick() {
  std::vector<std::pair<std::string, AnnouncerId>> swept;
  size_t expired = vspaces_->store().ExpireBefore(executor_->Now(), &swept);
  if (expired > 0) {
    metrics_->Increment("discovery.names_expired", expired);
    for (const auto& [vspace, id] : swept) {
      INS_LOG(kDebug) << "discovery: " << self_.ToString() << " expired "
                      << id.ToString() << " in '" << vspace << "'";
    }
  }
  expiry_task_ =
      executor_->ScheduleAfter(config_.expiry_sweep_interval, [this] { ExpiryTick(); });
}

void NameDiscovery::PurgeRoutesVia(const NodeAddress& next_hop,
                                   const std::set<std::string>& keep_vspaces) {
  size_t purged = 0;
  for (const std::string& vspace : vspaces_->RoutedSpaces()) {
    if (keep_vspaces.count(vspace) > 0) {
      metrics_->Increment("replica.routes_retained");
      continue;
    }
    std::vector<AnnouncerId> stale;
    vspaces_->store().ForEachShardTree(vspace, [&](const NameTree& tree) {
      for (const NameRecord* rec : tree.AllRecords()) {
        if (!rec->route.IsLocal() && rec->route.next_hop_inr == next_hop) {
          stale.push_back(rec->announcer);
        }
      }
    });
    for (const AnnouncerId& id : stale) {
      if (vspaces_->store().Remove(vspace, id)) {
        INS_LOG(kDebug) << "discovery: " << self_.ToString() << " purged "
                        << id.ToString() << " in '" << vspace << "' (route via dead "
                        << next_hop.ToString() << ")";
        ++purged;
      }
    }
  }
  if (purged > 0) {
    metrics_->Increment("discovery.routes_purged", purged);
  }
}

void NameDiscovery::SendFullStateTo(const NodeAddress& peer) {
  for (const std::string& vspace : vspaces_->RoutedSpaces()) {
    SendVspaceStateTo(peer, vspace);
  }
}

void NameDiscovery::SendVspaceStateTo(const NodeAddress& peer, const std::string& vspace) {
  if (!vspaces_->Routes(vspace)) {
    return;
  }
  std::vector<NameUpdateEntry> entries;
  vspaces_->store().ForEachShardTree(vspace, [&](const NameTree& tree) {
    for (const NameRecord* rec : tree.AllRecords()) {
      if (!rec->route.IsLocal() && rec->route.next_hop_inr == peer) {
        continue;
      }
      entries.push_back(EntryFromRecord(tree, rec));
    }
  });
  if (!entries.empty()) {
    SendUpdates(peer, vspace, std::move(entries), /*triggered=*/true);
  }
}

}  // namespace ins
