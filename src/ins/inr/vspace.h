// Virtual-space management (paper §2.5).
//
// A virtual space is an application-specified set of names sharing common
// attributes; internally an INR stores each space it routes in a separate,
// self-contained name-tree. Applications name their space via the well-known
// `vspace` attribute. Traffic for a space this resolver does not route is
// forwarded to the resolver that does, found by querying the DSR and cached
// (the Figure-15 "remote destination, different virtual space" path).

#ifndef INS_INR_VSPACE_H_
#define INS_INR_VSPACE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ins/common/executor.h"
#include "ins/common/metrics.h"
#include "ins/nametree/name_tree.h"
#include "ins/overlay/ping.h"

namespace ins {

// The well-known attribute naming a specifier's virtual space.
inline constexpr char kVspaceAttribute[] = "vspace";

class VspaceManager {
 public:
  // cb receives the owning INR's address, or an invalid address if no
  // resolver routes the space. May fire synchronously on a cache hit.
  using ResolveCallback = std::function<void(const NodeAddress& owner)>;

  VspaceManager(Executor* executor, SendFn send, NodeAddress dsr, MetricsRegistry* metrics);

  // Spaces this resolver routes. Adding an existing space is a no-op.
  void AddSpace(const std::string& vspace);
  bool RemoveSpace(const std::string& vspace);
  bool Routes(const std::string& vspace) const { return routed_.count(vspace) > 0; }
  std::vector<std::string> RoutedSpaces() const;

  // The name-tree for a routed space; nullptr when not routed.
  NameTree* Tree(const std::string& vspace);
  const NameTree* Tree(const std::string& vspace) const;

  // Extracts the root [vspace=...] value; "" when absent (the default space).
  static std::string VspaceOf(const NameSpecifier& name);

  // Resolves which INR routes `vspace`, caching the answer. Requests to the
  // DSR are coalesced per space.
  void ResolveOwner(const std::string& vspace, ResolveCallback cb);
  void HandleDsrVspaceResponse(const DsrVspaceResponse& resp);
  // Drops a cached owner (e.g. after a forward to it fails).
  void InvalidateOwner(const std::string& vspace);

  // Fired when AddSpace creates a new space, so the owner can refresh its
  // DSR registration.
  std::function<void()> on_spaces_changed;

  size_t owner_cache_size() const { return owner_cache_.size(); }

 private:
  Executor* executor_;
  SendFn send_;
  NodeAddress dsr_;
  MetricsRegistry* metrics_;

  std::map<std::string, std::unique_ptr<NameTree>> routed_;
  std::unordered_map<std::string, NodeAddress> owner_cache_;
  uint64_t next_request_id_ = 1;
  std::unordered_map<uint64_t, std::string> pending_by_id_;
  std::map<std::string, std::vector<ResolveCallback>> pending_callbacks_;
};

}  // namespace ins

#endif  // INS_INR_VSPACE_H_
