// Virtual-space management (paper §2.5).
//
// A virtual space is an application-specified set of names sharing common
// attributes; internally an INR stores each space it routes in a separate,
// self-contained name-tree. Applications name their space via the well-known
// `vspace` attribute. Traffic for a space this resolver does not route is
// forwarded to the resolver that does, found by querying the DSR and cached
// (the Figure-15 "remote destination, different virtual space" path).

#ifndef INS_INR_VSPACE_H_
#define INS_INR_VSPACE_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "ins/common/executor.h"
#include "ins/common/metrics.h"
#include "ins/nametree/name_tree.h"
#include "ins/nametree/sharded_name_tree.h"
#include "ins/overlay/ping.h"

namespace ins {

// The well-known attribute naming a specifier's virtual space.
inline constexpr char kVspaceAttribute[] = "vspace";

class VspaceManager {
 public:
  // cb receives the owning INR's address, or an invalid address if no
  // resolver routes the space. May fire synchronously on a cache hit.
  using ResolveCallback = std::function<void(const NodeAddress& owner)>;

  VspaceManager(Executor* executor, SendFn send, NodeAddress dsr, MetricsRegistry* metrics,
                ShardedNameTree::Options store_options = {});

  // Spaces this resolver routes. Adding an existing space is a no-op.
  void AddSpace(const std::string& vspace);
  bool RemoveSpace(const std::string& vspace);
  bool Routes(const std::string& vspace) const { return store_.Routes(vspace); }
  std::vector<std::string> RoutedSpaces() const { return store_.RoutedSpaces(); }

  // The sharded record store: one shard per routed space plus the hashed
  // fallback shards of the default space. All record reads/writes on the
  // resolver path go through this.
  ShardedNameTree& store() { return store_; }
  const ShardedNameTree& store() const { return store_; }

  // Compat: the first shard tree of a routed space; nullptr when not routed.
  // Mutating through this pointer is legal only in inline (non-concurrent)
  // store mode — which is how the protocol thread runs.
  NameTree* Tree(const std::string& vspace) { return store_.Tree(vspace); }
  const NameTree* Tree(const std::string& vspace) const { return store_.Tree(vspace); }

  // Extracts the root [vspace=...] value; "" when absent (the default space).
  static std::string VspaceOf(const NameSpecifier& name);

  // Resolves which INR routes `vspace`, caching the answer. Requests to the
  // DSR are coalesced per space.
  void ResolveOwner(const std::string& vspace, ResolveCallback cb);
  void HandleDsrVspaceResponse(const DsrVspaceResponse& resp);
  void HandleDsrReplicaSetResponse(const DsrReplicaSetResponse& resp);
  // Drops a cached owner (e.g. after a forward to it fails).
  void InvalidateOwner(const std::string& vspace);

  // Replica mode: ResolveOwner queries the DSR for the whole replica set
  // instead of the single owner, caches its first `replica_k` members (the
  // DSR answers every registrant in join order — only the first k ARE the
  // set) for `cache_ttl` (instead of forever), and answers with the first
  // member not currently believed dead. Off (the seed single-owner path,
  // byte-identical) unless enabled.
  void EnableReplicaMode(Duration cache_ttl, size_t replica_k);
  bool replica_mode() const { return replica_mode_; }

  // Per-address liveness shared across vspaces: NoteReplicaDead steers every
  // cached set away from `inr` immediately (metric availability.failovers
  // counts the steers); NoteReplicaAlive (digest heard, neighbor back up, or
  // a fresh DSR answer listing it) makes it eligible again.
  void NoteReplicaDead(const NodeAddress& inr);
  void NoteReplicaAlive(const NodeAddress& inr);
  bool IsDeadReplica(const NodeAddress& inr) const {
    return dead_replicas_.count(inr) > 0;
  }

  // The cached live replica set for `vspace` (empty when uncached/expired).
  std::vector<NodeAddress> CachedReplicas(const std::string& vspace) const;

  // Fired when AddSpace creates a new space, so the owner can refresh its
  // DSR registration.
  std::function<void()> on_spaces_changed;

  size_t owner_cache_size() const { return owner_cache_.size(); }

 private:
  struct OwnerEntry {
    std::vector<NodeAddress> replicas;  // join order; front = primary
    TimePoint expires = TimePoint::max();
  };

  // First cached replica not in dead_replicas_ (counting a non-front pick as
  // a failover); invalid when every member is believed dead.
  NodeAddress PickLive(const OwnerEntry& entry);
  // Takes `vspace` by value: callers pass the pending_by_id_ entry this
  // function erases.
  void FinishResolve(std::string vspace, uint64_t request_id,
                     std::vector<NodeAddress> replicas);

  Executor* executor_;
  SendFn send_;
  NodeAddress dsr_;
  MetricsRegistry* metrics_;

  ShardedNameTree store_;
  std::unordered_map<std::string, OwnerEntry> owner_cache_;
  uint64_t next_request_id_ = 1;
  std::unordered_map<uint64_t, std::string> pending_by_id_;
  std::map<std::string, std::vector<ResolveCallback>> pending_callbacks_;

  bool replica_mode_ = false;
  Duration replica_cache_ttl_ = Seconds(5);
  size_t replica_k_ = 0;
  std::set<NodeAddress> dead_replicas_;
};

}  // namespace ins

#endif  // INS_INR_VSPACE_H_
