// MobilityManager (paper §4): detects network movement at the client and
// rebinds, transparent to the application.
//
// The paper's Java implementation watches the host's IP address and rebinds
// the UDP socket when it changes. Here the manager polls the transport's
// bound address (a sim::Network socket Rebind() or a real interface change
// both surface there) and, when it observes a move, tells the InsClient to
// re-announce every advertised name from the new address immediately — the
// name-discovery protocol then retires the stale mapping everywhere. It can
// also drive the move itself via Move() for scripted mobility experiments.

#ifndef INS_CLIENT_MOBILITY_H_
#define INS_CLIENT_MOBILITY_H_

#include <functional>

#include "ins/client/api.h"
#include "ins/common/executor.h"
#include "ins/common/transport.h"

namespace ins {

class MobilityManager {
 public:
  // Rebinds the transport to a new address; wired to sim::Network::Socket's
  // Rebind in simulation or a platform-specific rebind in deployments.
  using RebindFn = std::function<Status(const NodeAddress& new_address)>;

  MobilityManager(Executor* executor, InsClient* client, RebindFn rebind,
                  Duration poll_interval = Milliseconds(500));
  ~MobilityManager();

  // Scripted move: rebind and notify the client at once.
  Status Move(const NodeAddress& new_address);

  // Observer for tests/apps.
  std::function<void(const NodeAddress& old_address, const NodeAddress& new_address)>
      on_moved;

  uint64_t moves_detected() const { return moves_; }

 private:
  void PollTick();

  Executor* executor_;
  InsClient* client_;
  RebindFn rebind_;
  Duration poll_interval_;
  NodeAddress last_address_;
  TaskId poll_task_ = kInvalidTaskId;
  uint64_t moves_ = 0;
};

}  // namespace ins

#endif  // INS_CLIENT_MOBILITY_H_
