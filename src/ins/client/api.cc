#include "ins/client/api.h"

#include <algorithm>

#include "ins/common/logging.h"
#include "ins/inr/forwarding.h"
#include "ins/inr/vspace.h"
#include "ins/name/parser.h"
#include "ins/overlay/ping.h"

namespace ins {

// --- AdvertisementHandle -----------------------------------------------------

AdvertisementHandle::~AdvertisementHandle() {
  if (client_ != nullptr) {
    auto& ads = client_->advertisements_;
    ads.erase(std::remove(ads.begin(), ads.end(), this), ads.end());
    // No de-registration message: the name simply stops being refreshed and
    // expires out of every resolver (soft state).
  }
}

void AdvertisementHandle::SetMetric(double metric) {
  metric_ = metric;
  if (client_ != nullptr) {
    client_->AnnounceNow(this);
  }
}

void AdvertisementHandle::SetName(NameSpecifier name) {
  name_ = std::move(name);
  vspace_ = VspaceManager::VspaceOf(name_);
  if (client_ != nullptr) {
    client_->AnnounceNow(this);
  }
}

// --- InsClient ----------------------------------------------------------------

InsClient::InsClient(Executor* executor, Transport* transport, ClientConfig config)
    : executor_(executor),
      transport_(transport),
      config_(config),
      rng_(config_.jitter_seed ^ transport->local_address().ip),
      attach_backoff_(config_.attach_backoff, &rng_) {
  transport_->SetReceiveHandler(
      [this](const NodeAddress& src, const Bytes& data) { OnMessage(src, data); });
}

InsClient::~InsClient() {
  executor_->Cancel(refresh_task_);
  executor_->Cancel(attach_retry_task_);
  for (auto& [id, pending] : pending_discovers_) {
    executor_->Cancel(pending.timeout_task);
  }
  for (auto& [id, pending] : pending_resolves_) {
    executor_->Cancel(pending.timeout_task);
  }
  for (AdvertisementHandle* handle : advertisements_) {
    handle->client_ = nullptr;  // outstanding handles become inert
  }
  transport_->SetReceiveHandler(nullptr);
}

void InsClient::Start() {
  if (!started_) {
    started_ = true;
    refresh_task_ = executor_->ScheduleAfter(config_.refresh_interval, [this] { RefreshTick(); });
  }
  if (config_.inr.IsValid()) {
    inr_ = config_.inr;
  } else if (!attached()) {
    // Calling Start() again while unattached retries the attachment at once
    // (the backoff loop keeps retrying on its own either way).
    BeginAttach(kInvalidAddress);
  }
}

void InsClient::BeginAttach(const NodeAddress& exclude) {
  if (exclude.IsValid()) {
    excluded_inrs_.insert(exclude);
  }
  attach_request_id_ = next_request_id_++;
  DsrListRequest req;
  req.request_id = attach_request_id_;
  transport_->Send(config_.dsr, Encode(req));
  metrics_.Increment("client.attach_attempts");
  executor_->Cancel(attach_retry_task_);
  attach_retry_task_ = executor_->ScheduleAfter(attach_backoff_.Next(), [this] {
    attach_retry_task_ = kInvalidTaskId;
    if (!attached()) {
      BeginAttach(kInvalidAddress);
    }
  });
}

void InsClient::NoteRequestTimeout() {
  metrics_.Increment("client.request_timeouts");
  if (++consecutive_timeouts_ < config_.failover_after_timeouts) {
    return;
  }
  if (!attached() || !config_.dsr.IsValid()) {
    return;
  }
  // The resolver stopped answering: presume it dead and find another. The
  // attachment drops, so new operations queue until the DSR names a
  // replacement; in-flight retries burn attempts but keep their deadlines.
  consecutive_timeouts_ = 0;
  resolver_pong_outstanding_ = false;
  metrics_.Increment("client.failovers");
  NodeAddress dead = inr_;
  inr_ = kInvalidAddress;
  BeginAttach(dead);
}

void InsClient::NoteResolverHealthy() {
  consecutive_timeouts_ = 0;
  // A working attachment ends the failover hunt: resolvers excluded along
  // the way are forgiven, so one that recovers is eligible next time.
  excluded_inrs_.clear();
}

bool InsClient::QueuePending(std::function<void()> fn) {
  if (pending_until_attached_.size() >= config_.max_pending_ops) {
    metrics_.Increment("client.pending_overflow");
    return false;
  }
  pending_until_attached_.push_back(std::move(fn));
  return true;
}

AnnouncerId InsClient::NextAnnouncer() {
  AnnouncerId id;
  id.ip = transport_->local_address().ip;
  id.start_time_us = static_cast<uint64_t>(executor_->Now().count());
  id.discriminator = next_discriminator_++;
  return id;
}

std::unique_ptr<AdvertisementHandle> InsClient::Advertise(NameSpecifier name,
                                                          std::vector<PortBinding> bindings,
                                                          double metric) {
  auto handle = std::unique_ptr<AdvertisementHandle>(new AdvertisementHandle());
  handle->client_ = this;
  handle->vspace_ = VspaceManager::VspaceOf(name);
  handle->name_ = std::move(name);
  handle->announcer_ = NextAnnouncer();
  handle->endpoint_.address = transport_->local_address();
  handle->endpoint_.bindings = std::move(bindings);
  handle->metric_ = metric;
  advertisements_.push_back(handle.get());
  AnnounceNow(handle.get());
  return handle;
}

void InsClient::AnnounceNow(AdvertisementHandle* handle) {
  if (!attached()) {
    AdvertisementHandle* raw = handle;
    // Overflow is fine to drop silently here: the handle stays registered,
    // so the next refresh tick after attachment announces it anyway.
    QueuePending([this, raw] {
      // The handle may have been destroyed while we waited.
      if (std::find(advertisements_.begin(), advertisements_.end(), raw) !=
          advertisements_.end()) {
        AnnounceNow(raw);
      }
    });
    return;
  }
  handle->endpoint_.address = transport_->local_address();
  Advertisement ad;
  ad.vspace = handle->vspace_;
  ad.name_text = handle->name_.ToString();
  ad.announcer = handle->announcer_;
  ad.endpoint = handle->endpoint_;
  ad.app_metric = handle->metric_;
  ad.lifetime_s = config_.advertisement_lifetime_s;
  ad.version = ++handle->version_;
  transport_->Send(inr_, Encode(ad));
  metrics_.Increment("client.advertisements_sent");
}

void InsClient::RefreshTick() {
  for (AdvertisementHandle* handle : advertisements_) {
    AnnounceNow(handle);
  }
  if (attached() && config_.dsr.IsValid()) {
    // Attachment liveness: a client that only advertises gets no responses,
    // so a dead resolver would silently eat its refreshes until every name
    // expired. An unanswered ping from the previous tick counts like a
    // request timeout and feeds the same failover counter.
    if (resolver_pong_outstanding_) {
      NoteRequestTimeout();
    }
    if (attached()) {  // NoteRequestTimeout may have dropped the attachment
      Ping ping;
      ping.nonce = next_request_id_++;
      ping.send_time_us = static_cast<uint64_t>(executor_->Now().count());
      resolver_pong_outstanding_ = true;
      transport_->Send(inr_, Encode(ping));
    }
  }
  refresh_task_ = executor_->ScheduleAfter(config_.refresh_interval, [this] { RefreshTick(); });
}

void InsClient::Discover(const NameSpecifier& filter, const std::string& vspace,
                         DiscoverCallback cb) {
  if (!attached()) {
    if (pending_until_attached_.size() >= config_.max_pending_ops) {
      metrics_.Increment("client.pending_overflow");
      cb(UnavailableError("client is not attached and its pending queue is full"), {});
      return;
    }
    QueuePending([this, filter, vspace, cb = std::move(cb)] { Discover(filter, vspace, cb); });
    return;
  }
  uint64_t id = next_request_id_++;
  DiscoveryRequest req;
  req.request_id = id;
  req.vspace = vspace;
  req.filter_text = filter.ToString();
  req.reply_to = transport_->local_address();

  TaskId timeout =
      executor_->ScheduleAfter(config_.request_timeout, [this, id] { OnDiscoverTimeout(id); });
  pending_discovers_.emplace(
      id, PendingDiscover{req, std::move(cb), timeout, 1, Backoff(config_.retry_backoff, &rng_)});
  transport_->Send(inr_, Encode(req));
  metrics_.Increment("client.discoveries_sent");
}

void InsClient::OnDiscoverTimeout(uint64_t id) {
  auto it = pending_discovers_.find(id);
  if (it == pending_discovers_.end()) {
    return;
  }
  NoteRequestTimeout();
  if (it->second.attempts >= config_.max_request_attempts) {
    DiscoverCallback cb = std::move(it->second.callback);
    pending_discovers_.erase(it);
    cb(DeadlineExceededError("discovery request timed out"), {});
    return;
  }
  it->second.timeout_task = executor_->ScheduleAfter(it->second.backoff.Next(),
                                                     [this, id] { ResendDiscover(id); });
}

void InsClient::ResendDiscover(uint64_t id) {
  auto it = pending_discovers_.find(id);
  if (it == pending_discovers_.end()) {
    return;
  }
  ++it->second.attempts;
  // Unattached mid-failover: the attempt still burns (total time stays
  // bounded) but nothing is sent; the next one lands on the new resolver.
  if (attached()) {
    metrics_.Increment("client.discover_retries");
    transport_->Send(inr_, Encode(it->second.request));
  }
  it->second.timeout_task =
      executor_->ScheduleAfter(config_.request_timeout, [this, id] { OnDiscoverTimeout(id); });
}

void InsClient::ResolveEarly(const NameSpecifier& name, ResolveCallback cb) {
  if (!attached()) {
    if (pending_until_attached_.size() >= config_.max_pending_ops) {
      metrics_.Increment("client.pending_overflow");
      cb(UnavailableError("client is not attached and its pending queue is full"), {});
      return;
    }
    QueuePending([this, name, cb = std::move(cb)] { ResolveEarly(name, cb); });
    return;
  }
  uint64_t id = next_request_id_++;
  Packet req;
  req.early_binding = true;
  req.destination_name = name.ToString();
  req.payload = EncodeEarlyBindingPayload(id, transport_->local_address());

  TaskId timeout =
      executor_->ScheduleAfter(config_.request_timeout, [this, id] { OnResolveTimeout(id); });
  pending_resolves_.emplace(
      id, PendingResolve{req, std::move(cb), timeout, 1, Backoff(config_.retry_backoff, &rng_)});
  transport_->Send(inr_, Encode(req));
  metrics_.Increment("client.resolves_sent");
}

void InsClient::OnResolveTimeout(uint64_t id) {
  auto it = pending_resolves_.find(id);
  if (it == pending_resolves_.end()) {
    return;
  }
  NoteRequestTimeout();
  if (it->second.attempts >= config_.max_request_attempts) {
    ResolveCallback cb = std::move(it->second.callback);
    pending_resolves_.erase(it);
    cb(DeadlineExceededError("early binding request timed out"), {});
    return;
  }
  it->second.timeout_task =
      executor_->ScheduleAfter(it->second.backoff.Next(), [this, id] { ResendResolve(id); });
}

void InsClient::ResendResolve(uint64_t id) {
  auto it = pending_resolves_.find(id);
  if (it == pending_resolves_.end()) {
    return;
  }
  ++it->second.attempts;
  if (attached()) {
    metrics_.Increment("client.resolve_retries");
    transport_->Send(inr_, Encode(it->second.request));
  }
  it->second.timeout_task =
      executor_->ScheduleAfter(config_.request_timeout, [this, id] { OnResolveTimeout(id); });
}

Status InsClient::SendData(const NameSpecifier& destination, const Bytes& payload,
                           const NameSpecifier& source, bool deliver_all,
                           bool answer_from_cache, uint32_t cache_lifetime_s) {
  if (!attached()) {
    Packet queued;  // capture everything needed by value
    queued.destination_name = destination.ToString();
    queued.source_name = source.ToString();
    queued.deliver_all = deliver_all;
    queued.answer_from_cache = answer_from_cache;
    queued.cache_lifetime_s = cache_lifetime_s;
    queued.payload = payload;
    queued.trace_id = NextTraceId();
    if (!QueuePending([this, queued = std::move(queued)] { transport_->Send(inr_, Encode(queued)); })) {
      return UnavailableError("client is not attached and its pending queue is full");
    }
    return Status::Ok();
  }
  Packet p;
  p.destination_name = destination.ToString();
  p.source_name = source.ToString();
  p.deliver_all = deliver_all;
  p.answer_from_cache = answer_from_cache;
  p.cache_lifetime_s = cache_lifetime_s;
  p.payload = payload;
  p.trace_id = NextTraceId();
  metrics_.Increment(deliver_all ? "client.multicasts_sent" : "client.anycasts_sent");
  return transport_->Send(inr_, Encode(p));
}

uint64_t InsClient::NextTraceId() {
  const uint64_t n = ++data_packets_sent_;
  if (config_.trace_sample_every == 0 || n % config_.trace_sample_every != 0) {
    return 0;
  }
  const NodeAddress self = address();
  uint64_t id = (static_cast<uint64_t>(self.ip) << 32) ^
                (static_cast<uint64_t>(self.port) << 16) ^ n;
  if (id == 0) {
    id = 1;  // 0 on the wire means "untraced"
  }
  last_trace_id_ = id;
  return id;
}

Status InsClient::SendAnycast(const NameSpecifier& destination, const Bytes& payload,
                              const NameSpecifier& source, uint32_t cache_lifetime_s) {
  return SendData(destination, payload, source, /*deliver_all=*/false,
                  /*answer_from_cache=*/false, cache_lifetime_s);
}

Status InsClient::SendMulticast(const NameSpecifier& destination, const Bytes& payload,
                                const NameSpecifier& source, uint32_t cache_lifetime_s) {
  return SendData(destination, payload, source, /*deliver_all=*/true,
                  /*answer_from_cache=*/false, cache_lifetime_s);
}

Status InsClient::SendCacheable(const NameSpecifier& destination, const Bytes& payload,
                                const NameSpecifier& source) {
  return SendData(destination, payload, source, /*deliver_all=*/false,
                  /*answer_from_cache=*/true, /*cache_lifetime_s=*/0);
}

void InsClient::HandleAddressChange() {
  metrics_.Increment("client.address_changes");
  // Late binding at work: nothing to tear down. Re-announce every name from
  // the new address so resolvers track the move at once.
  for (AdvertisementHandle* handle : advertisements_) {
    AnnounceNow(handle);
  }
}

void InsClient::FlushPendingWhenAttached() {
  std::vector<std::function<void()>> pending = std::move(pending_until_attached_);
  pending_until_attached_.clear();
  for (auto& fn : pending) {
    fn();
  }
}

void InsClient::OnMessage(const NodeAddress& src, const Bytes& data) {
  (void)src;
  auto env = DecodeMessage(data);
  if (!env.ok()) {
    metrics_.Increment("client.decode_errors");
    return;
  }

  if (auto* list = std::get_if<DsrListResponse>(&env->body)) {
    if (list->request_id == attach_request_id_ && !attached()) {
      if (list->active_inrs.empty()) {
        // Keep the backoff retry loop running until a resolver shows up.
        INS_LOG(kWarning) << "InsClient: no active resolvers in the domain";
        return;
      }
      attach_request_id_ = 0;
      // Prefer any resolver not excluded by the ongoing failover hunt; take
      // the first anyway if every listed one is excluded (one may have
      // restarted). The exclusion set survives until the new attachment
      // proves healthy — back-to-back failovers must not bounce between two
      // dead resolvers.
      NodeAddress chosen = list->active_inrs.front();
      for (const NodeAddress& candidate : list->active_inrs) {
        if (excluded_inrs_.count(candidate) == 0) {
          chosen = candidate;
          break;
        }
      }
      inr_ = chosen;
      consecutive_timeouts_ = 0;
      resolver_pong_outstanding_ = false;
      attach_backoff_.Reset();
      executor_->Cancel(attach_retry_task_);
      attach_retry_task_ = kInvalidTaskId;
      metrics_.Increment("client.attached");
      FlushPendingWhenAttached();
    }
    return;
  }

  if (auto* resp = std::get_if<DiscoveryResponse>(&env->body)) {
    auto it = pending_discovers_.find(resp->request_id);
    if (it == pending_discovers_.end()) {
      return;
    }
    executor_->Cancel(it->second.timeout_task);
    DiscoverCallback cb = std::move(it->second.callback);
    pending_discovers_.erase(it);
    NoteResolverHealthy();

    std::vector<DiscoveredName> names;
    for (const DiscoveryResponse::Item& item : resp->items) {
      auto parsed = ParseNameSpecifier(item.name_text);
      if (!parsed.ok()) {
        continue;
      }
      names.push_back({std::move(*parsed), item.endpoint, item.app_metric});
    }
    cb(Status::Ok(), std::move(names));
    return;
  }

  if (auto* resp = std::get_if<EarlyBindingResponse>(&env->body)) {
    auto it = pending_resolves_.find(resp->request_id);
    if (it == pending_resolves_.end()) {
      return;
    }
    executor_->Cancel(it->second.timeout_task);
    ResolveCallback cb = std::move(it->second.callback);
    pending_resolves_.erase(it);
    NoteResolverHealthy();

    std::vector<Binding> bindings;
    for (const EarlyBindingResponse::Item& item : resp->items) {
      bindings.push_back({item.endpoint, item.app_metric});
    }
    cb(Status::Ok(), std::move(bindings));
    return;
  }

  if (auto* packet = std::get_if<Packet>(&env->body)) {
    metrics_.Increment("client.data_received");
    if (data_handler_) {
      NameSpecifier source;
      if (!packet->source_name.empty()) {
        auto parsed = ParseNameSpecifier(packet->source_name);
        if (parsed.ok()) {
          source = std::move(*parsed);
        }
      }
      data_handler_(source, packet->payload);
    }
    return;
  }

  if (std::get_if<Ping>(&env->body) != nullptr) {
    // Clients answer pings too (useful for diagnostics).
    transport_->Send(src, Encode(PingAgent::PongFor(std::get<Ping>(env->body))));
    return;
  }

  if (std::get_if<Pong>(&env->body) != nullptr) {
    if (src == inr_) {
      // The attachment liveness probe came back: the resolver is alive.
      resolver_pong_outstanding_ = false;
      NoteResolverHealthy();
    }
    return;
  }

  metrics_.Increment("client.unexpected_messages");
}

}  // namespace ins
