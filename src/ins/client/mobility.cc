#include "ins/client/mobility.h"

#include "ins/common/logging.h"

namespace ins {

MobilityManager::MobilityManager(Executor* executor, InsClient* client, RebindFn rebind,
                                 Duration poll_interval)
    : executor_(executor),
      client_(client),
      rebind_(std::move(rebind)),
      poll_interval_(poll_interval),
      last_address_(client->address()) {
  poll_task_ = executor_->ScheduleAfter(poll_interval_, [this] { PollTick(); });
}

MobilityManager::~MobilityManager() { executor_->Cancel(poll_task_); }

Status MobilityManager::Move(const NodeAddress& new_address) {
  NodeAddress old = client_->address();
  INS_RETURN_IF_ERROR(rebind_(new_address));
  ++moves_;
  INS_LOG(kDebug) << "MobilityManager: moved " << old.ToString() << " -> "
                  << new_address.ToString();
  client_->HandleAddressChange();
  last_address_ = new_address;
  if (on_moved) {
    on_moved(old, new_address);
  }
  return Status::Ok();
}

void MobilityManager::PollTick() {
  NodeAddress current = client_->address();
  if (current != last_address_) {
    // The address changed underneath us (interface switch): re-announce.
    NodeAddress old = last_address_;
    last_address_ = current;
    ++moves_;
    client_->HandleAddressChange();
    if (on_moved) {
      on_moved(old, current);
    }
  }
  poll_task_ = executor_->ScheduleAfter(poll_interval_, [this] { PollTick(); });
}

}  // namespace ins
