// The INS client API (paper §3, §4).
//
// InsClient is the library applications link against: it attaches to a
// resolver (given directly or found through the DSR), advertises intentional
// names with periodic soft-state refresh, discovers names matching a filter,
// performs early binding, and exchanges data via intentional anycast and
// multicast. The paper's Floorplan/Camera/Printer applications sit directly
// on this interface.

#ifndef INS_CLIENT_API_H_
#define INS_CLIENT_API_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ins/common/backoff.h"
#include "ins/common/executor.h"
#include "ins/common/metrics.h"
#include "ins/common/transport.h"
#include "ins/name/name_specifier.h"
#include "ins/nametree/name_record.h"
#include "ins/wire/messages.h"

namespace ins {

struct ClientConfig {
  // Resolver to attach to. If invalid, the client asks the DSR for the
  // active list and attaches to the first resolver.
  NodeAddress inr;
  NodeAddress dsr;
  // Advertisement refresh period and soft-state lifetime.
  Duration refresh_interval = Seconds(15);
  uint32_t advertisement_lifetime_s = 45;
  Duration request_timeout = Seconds(2);

  // --- Resilience -----------------------------------------------------------
  // Total send attempts per Discover/ResolveEarly before the callback fails
  // with kDeadlineExceeded. Retries keep the request id, so a late answer to
  // an earlier attempt still completes the operation. Total retry time is
  // bounded: attempts * request_timeout plus the (capped) backoffs between.
  int max_request_attempts = 3;
  BackoffConfig retry_backoff{Milliseconds(250), Seconds(2), 2.0, 0.3};
  // Consecutive request timeouts (or missed resolver pongs) after which the
  // attached resolver is presumed dead and the client re-attaches through the
  // DSR, preferring a different resolver. Needs a valid `dsr`.
  int failover_after_timeouts = 2;
  // Bound on operations queued while unattached; excess fails kUnavailable
  // instead of growing without limit while the domain is down.
  size_t max_pending_ops = 64;
  BackoffConfig attach_backoff{Milliseconds(500), Seconds(8), 2.0, 0.3};
  // Seed for retry jitter; per-client value keeps a fleet decorrelated while
  // simulation runs stay reproducible.
  uint64_t jitter_seed = 0xC11E57;

  // Hop-by-hop tracing: every Nth data packet this client sends carries a
  // trace id (and the kFlagTraceSampled wire bit), leaving events in each
  // resolver's trace ring along its path. 0 (the default) disables sampling —
  // the wire format is then byte-identical to the untraced seed.
  uint64_t trace_sample_every = 0;
};

// Handle for one advertised name; destroying it stops refreshing (the name
// then expires from the system by soft state — no explicit de-registration).
class AdvertisementHandle {
 public:
  ~AdvertisementHandle();
  AdvertisementHandle(const AdvertisementHandle&) = delete;
  AdvertisementHandle& operator=(const AdvertisementHandle&) = delete;

  const NameSpecifier& name() const { return name_; }
  const AnnouncerId& announcer() const { return announcer_; }

  // Updates the anycast metric (e.g. a printer's queue length); announced
  // immediately and in every subsequent refresh.
  void SetMetric(double metric);
  // Replaces the advertised name (service mobility: new room, new
  // properties) — announced immediately.
  void SetName(NameSpecifier name);

 private:
  friend class InsClient;
  AdvertisementHandle() = default;

  class InsClient* client_ = nullptr;
  NameSpecifier name_;
  AnnouncerId announcer_;
  std::string vspace_;
  EndpointInfo endpoint_;
  double metric_ = 0.0;
  uint64_t version_ = 0;
};

class InsClient {
 public:
  // Discovered name plus how to reach it.
  struct DiscoveredName {
    NameSpecifier name;
    EndpointInfo endpoint;
    double app_metric = 0.0;
  };
  using DiscoverCallback =
      std::function<void(Status, std::vector<DiscoveredName>)>;

  struct Binding {
    EndpointInfo endpoint;
    double app_metric = 0.0;
  };
  using ResolveCallback = std::function<void(Status, std::vector<Binding>)>;

  // Payload received via late binding, with the packet's source name.
  using DataHandler =
      std::function<void(const NameSpecifier& source, const Bytes& payload)>;

  InsClient(Executor* executor, Transport* transport, ClientConfig config);
  ~InsClient();

  InsClient(const InsClient&) = delete;
  InsClient& operator=(const InsClient&) = delete;

  // Attaches to a resolver. Resolves through the DSR when config.inr is
  // unset; safe to call Send/Advertise immediately after (operations queue
  // until attached).
  void Start();

  bool attached() const { return inr_.IsValid(); }
  NodeAddress resolver() const { return inr_; }
  NodeAddress address() const { return transport_->local_address(); }

  // --- Advertising ----------------------------------------------------------

  // Advertises `name` with the given service bindings and anycast metric.
  // The name is refreshed periodically until the handle is destroyed.
  std::unique_ptr<AdvertisementHandle> Advertise(NameSpecifier name,
                                                 std::vector<PortBinding> bindings = {},
                                                 double metric = 0.0);

  // --- Discovery and early binding -------------------------------------------

  // Returns all known names matching `filter` (empty filter = everything).
  void Discover(const NameSpecifier& filter, const std::string& vspace,
                DiscoverCallback cb);

  // Early binding: resolve a name to network locations + metrics and pick
  // at the client (richer than round-robin DNS).
  void ResolveEarly(const NameSpecifier& name, ResolveCallback cb);

  // --- Late binding data path -------------------------------------------------

  // Sends payload to the best (least-metric) node matching `destination`.
  Status SendAnycast(const NameSpecifier& destination, const Bytes& payload,
                     const NameSpecifier& source = {}, uint32_t cache_lifetime_s = 0);
  // Sends payload to every node matching `destination`.
  Status SendMulticast(const NameSpecifier& destination, const Bytes& payload,
                       const NameSpecifier& source = {}, uint32_t cache_lifetime_s = 0);
  // As SendAnycast, but an INR holding a cached object under `destination`
  // answers directly (the §3.2 caching extension).
  Status SendCacheable(const NameSpecifier& destination, const Bytes& payload,
                       const NameSpecifier& source = {});

  // Handler for incoming late-binding data.
  void OnData(DataHandler handler) { data_handler_ = std::move(handler); }

  // Called by MobilityManager after the transport rebinds: re-announces
  // every live advertisement from the new address immediately.
  void HandleAddressChange();

  MetricsRegistry& metrics() { return metrics_; }

  // Trace id stamped on the most recent sampled data packet (0 if none yet).
  // Tests use it to pull the matching journey out of the harness collector.
  uint64_t last_trace_id() const { return last_trace_id_; }

  // The executor the client runs on; applications built on the API use it
  // for their own timers (request timeouts, periodic work).
  Executor* executor() { return executor_; }

 private:
  friend class AdvertisementHandle;

  void OnMessage(const NodeAddress& src, const Bytes& data);
  void AnnounceNow(AdvertisementHandle* handle);
  void RefreshTick();
  Status SendData(const NameSpecifier& destination, const Bytes& payload,
                  const NameSpecifier& source, bool deliver_all, bool answer_from_cache,
                  uint32_t cache_lifetime_s);
  void FlushPendingWhenAttached();
  AnnouncerId NextAnnouncer();
  // Queues `fn` until attachment; false (and nothing queued) once the bound
  // `max_pending_ops` is reached.
  bool QueuePending(std::function<void()> fn);
  // (Re-)requests the DSR's active list, retrying with jittered backoff until
  // a resolver outside the exclusion set (best effort) answers. A valid
  // `exclude` is ADDED to the set — consecutive failovers accumulate, so a
  // chain of dead resolvers is not revisited while hunting for a live one.
  void BeginAttach(const NodeAddress& exclude);
  // One Discover/Resolve attempt timed out: after `failover_after_timeouts`
  // in a row the attached resolver is presumed dead and we re-attach.
  void NoteRequestTimeout();
  // The attached resolver actually answered something: reset the timeout
  // strike counter AND clear the exclusion set, so a resolver excluded
  // during the last failover hunt becomes eligible again once it recovers.
  void NoteResolverHealthy();
  // The trace id for the next data packet: nonzero every
  // config_.trace_sample_every-th send, derived from this client's address
  // plus a per-client counter so concurrent clients never collide.
  uint64_t NextTraceId();
  void OnDiscoverTimeout(uint64_t id);
  void ResendDiscover(uint64_t id);
  void OnResolveTimeout(uint64_t id);
  void ResendResolve(uint64_t id);

  Executor* executor_;
  Transport* transport_;
  ClientConfig config_;
  MetricsRegistry metrics_;
  Rng rng_;
  Backoff attach_backoff_;

  NodeAddress inr_;
  bool started_ = false;
  uint64_t attach_request_id_ = 0;
  uint64_t next_request_id_ = 1;
  uint32_t next_discriminator_ = 0;
  TaskId refresh_task_ = kInvalidTaskId;
  TaskId attach_retry_task_ = kInvalidTaskId;
  // Resolvers skipped when choosing from the DSR list after failovers (the
  // ones declared dead since the last healthy response); one is taken anyway
  // if every listed resolver is excluded. Cleared by NoteResolverHealthy.
  std::set<NodeAddress> excluded_inrs_;
  int consecutive_timeouts_ = 0;
  uint64_t data_packets_sent_ = 0;
  uint64_t last_trace_id_ = 0;
  // Liveness of the attachment itself: a resolver that only ever receives
  // our advertisements would die unnoticed, so every refresh tick pings it
  // and an unanswered ping counts like a request timeout.
  bool resolver_pong_outstanding_ = false;

  std::vector<AdvertisementHandle*> advertisements_;
  std::vector<std::function<void()>> pending_until_attached_;

  struct PendingDiscover {
    DiscoveryRequest request;  // kept for retries (same request id)
    DiscoverCallback callback;
    TaskId timeout_task;
    int attempts;
    Backoff backoff;
  };
  std::map<uint64_t, PendingDiscover> pending_discovers_;

  struct PendingResolve {
    Packet request;  // kept for retries (payload embeds the request id)
    ResolveCallback callback;
    TaskId timeout_task;
    int attempts;
    Backoff backoff;
  };
  std::map<uint64_t, PendingResolve> pending_resolves_;

  DataHandler data_handler_;
};

}  // namespace ins

#endif  // INS_CLIENT_API_H_
