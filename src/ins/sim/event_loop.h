// Deterministic discrete-event loop (virtual time).
//
// The whole resolver stack schedules work through the Executor interface;
// under simulation that executor is this loop, so multi-node experiments run
// deterministically and "time" (soft-state lifetimes, refresh intervals,
// link latencies) advances only when the loop processes events.

#ifndef INS_SIM_EVENT_LOOP_H_
#define INS_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>

#include "ins/common/clock.h"
#include "ins/common/executor.h"

namespace ins::sim {

class EventLoop : public Executor, public Clock {
 public:
  EventLoop() = default;

  // Executor:
  TaskId ScheduleAt(TimePoint when, std::function<void()> fn) override;
  bool Cancel(TaskId id) override;
  TimePoint Now() const override { return now_; }

  // Runs the next event, advancing virtual time to it. False if idle.
  bool Step();

  // Runs until no events remain or `max_events` have run.
  // Returns the number of events processed.
  size_t RunUntilIdle(size_t max_events = SIZE_MAX);

  // Runs events with time <= deadline, then advances the clock to the
  // deadline even if idle earlier.
  size_t RunUntil(TimePoint deadline);
  size_t RunFor(Duration d) { return RunUntil(now_ + d); }

  size_t pending_count() const { return queue_.size(); }

 private:
  using Key = std::pair<TimePoint, TaskId>;  // TaskId doubles as a tiebreak

  TimePoint now_{0};
  TaskId next_id_ = 1;
  std::map<Key, std::function<void()>> queue_;
  std::unordered_map<TaskId, TimePoint> index_;
};

}  // namespace ins::sim

#endif  // INS_SIM_EVENT_LOOP_H_
