// CPU cost modelling for simulated hosts.
//
// The simulator runs the *real* resolver code; to reproduce CPU-bound
// behaviour (paper §2.5, Figure 8) a host charges the measured wall-clock
// time of each handler execution — multiplied by a scale factor emulating a
// slower processor — against its virtual clock. While the host is "busy",
// later-arriving datagrams queue behind it.

#ifndef INS_SIM_CPU_METER_H_
#define INS_SIM_CPU_METER_H_

#include <chrono>
#include <functional>

#include "ins/common/clock.h"

namespace ins::sim {

// Measures the wall-clock duration of `fn`.
Duration MeasureWallTime(const std::function<void()>& fn);

// Per-host CPU account.
struct CpuAccount {
  double scale = 0;          // 0 = CPU not modeled
  TimePoint busy_until{0};   // virtual time the host becomes free
  Duration total_busy{0};    // accumulated scaled CPU time

  bool enabled() const { return scale > 0; }

  // Records one handler execution that started at virtual time `start` and
  // measured `wall` of real CPU. Returns the scaled busy duration.
  Duration Charge(TimePoint start, Duration wall) {
    auto scaled = Duration(static_cast<int64_t>(static_cast<double>(wall.count()) * scale));
    TimePoint begin = std::max(start, busy_until);
    busy_until = begin + scaled;
    total_busy += scaled;
    return scaled;
  }
};

}  // namespace ins::sim

#endif  // INS_SIM_CPU_METER_H_
