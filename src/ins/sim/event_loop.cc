#include "ins/sim/event_loop.h"

#include <cassert>

namespace ins::sim {

TaskId EventLoop::ScheduleAt(TimePoint when, std::function<void()> fn) {
  if (when < now_) {
    when = now_;  // the past is not available; run as soon as possible
  }
  TaskId id = next_id_++;
  queue_.emplace(Key{when, id}, std::move(fn));
  index_.emplace(id, when);
  return id;
}

bool EventLoop::Cancel(TaskId id) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return false;
  }
  queue_.erase(Key{it->second, id});
  index_.erase(it);
  return true;
}

bool EventLoop::Step() {
  if (queue_.empty()) {
    return false;
  }
  auto it = queue_.begin();
  assert(it->first.first >= now_ && "time went backwards");
  now_ = it->first.first;
  std::function<void()> fn = std::move(it->second);
  index_.erase(it->first.second);
  queue_.erase(it);
  fn();
  return true;
}

size_t EventLoop::RunUntilIdle(size_t max_events) {
  size_t n = 0;
  while (n < max_events && Step()) {
    ++n;
  }
  return n;
}

size_t EventLoop::RunUntil(TimePoint deadline) {
  size_t n = 0;
  while (!queue_.empty() && queue_.begin()->first.first <= deadline) {
    Step();
    ++n;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return n;
}

}  // namespace ins::sim
