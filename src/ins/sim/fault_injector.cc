#include "ins/sim/fault_injector.h"

#include "ins/common/logging.h"

namespace ins::sim {

FaultInjector::FaultInjector(Network* network, uint64_t seed)
    : network_(network), loop_(network->loop()), rng_(seed ^ 0x6661756c74ull /* "fault" */) {
  network_->SetFaultFilter(
      [this](const NodeAddress& src, const NodeAddress& dst, Bytes& data) {
        return Filter(src, dst, data);
      });
}

FaultInjector::~FaultInjector() { network_->SetFaultFilter(nullptr); }

void FaultInjector::Partition(std::vector<std::vector<uint32_t>> groups) {
  group_of_.clear();
  for (size_t g = 0; g < groups.size(); ++g) {
    for (uint32_t ip : groups[g]) {
      group_of_[ip] = static_cast<int>(g);
    }
  }
  partitioned_ = true;
  metrics_.Increment("faults.partitions");
  INS_LOG(kDebug) << "fault: partition into " << groups.size() << " groups";
}

void FaultInjector::Heal() {
  if (!partitioned_) {
    return;
  }
  partitioned_ = false;
  group_of_.clear();
  metrics_.Increment("faults.heals");
  INS_LOG(kDebug) << "fault: partition healed";
}

void FaultInjector::StartLossBurst(double probability, Duration duration) {
  loss_probability_ = probability;
  loss_until_ = loop_->Now() + duration;
  metrics_.Increment("faults.loss_bursts");
}

void FaultInjector::StartDelaySpike(Duration extra_delay, Duration duration) {
  extra_delay_ = extra_delay;
  delay_until_ = loop_->Now() + duration;
  metrics_.Increment("faults.delay_spikes");
}

void FaultInjector::StartCorruptionStorm(double probability, Duration duration) {
  corrupt_probability_ = probability;
  corrupt_until_ = loop_->Now() + duration;
  metrics_.Increment("faults.corruption_storms");
}

void FaultInjector::Schedule(const FaultPlan& plan) {
  for (const FaultEvent& ev : plan.events) {
    switch (ev.kind) {
      case FaultEvent::Kind::kCrashDsr:
      case FaultEvent::Kind::kRestartDsr:
        continue;  // process faults belong to the harness
      default:
        break;
    }
    loop_->ScheduleAt(ev.at, [this, ev] {
      switch (ev.kind) {
        case FaultEvent::Kind::kPartition:
          Partition(ev.groups);
          break;
        case FaultEvent::Kind::kHeal:
          Heal();
          break;
        case FaultEvent::Kind::kLossBurst:
          StartLossBurst(ev.probability, ev.duration);
          break;
        case FaultEvent::Kind::kDelaySpike:
          StartDelaySpike(ev.extra_delay, ev.duration);
          break;
        case FaultEvent::Kind::kCorruptionStorm:
          StartCorruptionStorm(ev.probability, ev.duration);
          break;
        case FaultEvent::Kind::kCrashDsr:
        case FaultEvent::Kind::kRestartDsr:
          break;  // filtered above
      }
    });
  }
}

FaultDecision FaultInjector::Filter(const NodeAddress& src, const NodeAddress& dst,
                                    Bytes& data) {
  FaultDecision verdict;
  if (partitioned_) {
    // Hosts absent from every group are isolated — strict by design, so a
    // forgotten host in a test plan fails loudly rather than leaking traffic.
    auto s = group_of_.find(src.ip);
    auto d = group_of_.find(dst.ip);
    if (s == group_of_.end() || d == group_of_.end() || s->second != d->second) {
      metrics_.Increment("faults.partition_dropped");
      verdict.drop = true;
      return verdict;
    }
  }
  if (loop_->Now() < loss_until_ && rng_.NextBool(loss_probability_)) {
    metrics_.Increment("faults.burst_dropped");
    verdict.drop = true;
    return verdict;
  }
  if (loop_->Now() < corrupt_until_ && rng_.NextBool(corrupt_probability_)) {
    Corrupt(data);
    metrics_.Increment("faults.corrupted");
  }
  if (loop_->Now() < delay_until_) {
    verdict.extra_delay = extra_delay_;
    metrics_.Increment("faults.delayed");
  }
  return verdict;
}

void FaultInjector::Corrupt(Bytes& data) {
  if (data.empty()) {
    return;
  }
  if (rng_.NextBool(0.5)) {
    // Truncate to a random prefix (possibly empty).
    data.resize(rng_.NextBelow(data.size()));
  } else {
    // Flip one random bit.
    size_t byte = rng_.NextBelow(data.size());
    data[byte] ^= static_cast<uint8_t>(1u << rng_.NextBelow(8));
  }
}

}  // namespace ins::sim
