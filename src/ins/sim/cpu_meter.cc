#include "ins/sim/cpu_meter.h"

namespace ins::sim {

Duration MeasureWallTime(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<Duration>(end - start);
}

}  // namespace ins::sim
