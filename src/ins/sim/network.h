// Simulated datagram network.
//
// Models the paper's testbed environment: hosts connected by links with
// one-way propagation latency, finite bandwidth (serialization delay with a
// per-link FIFO), and optional random loss. This substitutes for the paper's
// 1–5 Mbps in-building RF links (see DESIGN.md §1 substitutions).
//
// Hosts optionally model a CPU: when enabled, each datagram handler's real
// (wall-clock) execution time — scaled by `cpu_scale` — occupies the host,
// delaying subsequently arriving datagrams. This is what makes the Figure 8
// CPU-vs-bandwidth saturation experiment mechanically reproducible: the real
// resolver code's processing cost competes against modeled link bandwidth.
//
// Mobility: a bound socket can Rebind() to a new address, modelling a node
// that moves networks; packets sent to the old address are then dropped,
// exactly the situation INS's late binding and MobilityManager handle.

#ifndef INS_SIM_NETWORK_H_
#define INS_SIM_NETWORK_H_

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "ins/common/clock.h"
#include "ins/common/metrics.h"
#include "ins/common/node_address.h"
#include "ins/common/rng.h"
#include "ins/common/transport.h"
#include "ins/sim/cpu_meter.h"
#include "ins/sim/event_loop.h"

namespace ins::sim {

struct LinkParams {
  Duration latency = Milliseconds(1);   // one-way propagation delay
  double bandwidth_bps = 0;             // 0 = infinite (no serialization delay)
  double loss_probability = 0;          // [0,1)
};

// Verdict of the installed fault filter for one in-flight datagram. The
// filter may also mutate the payload bytes in place (corruption injection).
struct FaultDecision {
  bool drop = false;
  Duration extra_delay{0};
};

class Network {
 public:
  // Consulted for every inter-host datagram before normal loss/latency
  // modelling; `data` is the private in-flight copy, safe to mutate.
  using FaultFilter =
      std::function<FaultDecision(const NodeAddress& src, const NodeAddress& dst, Bytes& data)>;

  Network(EventLoop* loop, uint64_t seed = 1);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Link parameters used when no per-pair override exists.
  void SetDefaultLink(const LinkParams& params) { default_link_ = params; }
  // Overrides the (directed both ways) link between two hosts.
  void SetLink(uint32_t ip_a, uint32_t ip_b, const LinkParams& params);

  // Enables CPU modelling for a host: handler wall time * scale busies it.
  // scale 0 disables. A scale of ~340 emulates the paper's 450 MHz Pentium
  // II + JVM per-update costs on 2026 hardware (calibrated in bench_fig8).
  void SetCpuScale(uint32_t ip, double scale);

  // Binds a socket; at most one socket per address. The returned Transport
  // is owned by the caller and must not outlive the Network.
  class Socket;
  std::unique_ptr<Socket> Bind(const NodeAddress& address);

  // Per-host accounting.
  struct HostStats {
    uint64_t datagrams_sent = 0;
    uint64_t datagrams_received = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
    Duration cpu_busy{0};  // accumulated modeled CPU time
  };
  const HostStats& host_stats(uint32_t ip) const;
  void ResetStats();

  uint64_t total_datagrams_dropped() const { return dropped_; }

  // Installs (or clears, with nullptr) the fault-injection hook. At most one
  // filter; the FaultInjector owns composition of concurrent fault windows.
  void SetFaultFilter(FaultFilter filter) { fault_filter_ = std::move(filter); }

  EventLoop* loop() { return loop_; }

  class Socket : public Transport {
   public:
    ~Socket() override;
    Status Send(const NodeAddress& destination, const Bytes& data) override;
    void SetReceiveHandler(ReceiveHandler handler) override;
    NodeAddress local_address() const override { return address_; }

    // Moves this endpoint to a new address (node mobility). Traffic in
    // flight to the old address is dropped on arrival.
    Status Rebind(const NodeAddress& new_address);

   private:
    friend class Network;
    Socket(Network* net, NodeAddress address) : net_(net), address_(address) {}

    Network* net_;
    NodeAddress address_;
    ReceiveHandler handler_;
  };

 private:
  friend class Socket;

  const LinkParams& LinkFor(uint32_t a, uint32_t b) const;
  void Deliver(NodeAddress src, NodeAddress dst, Bytes data);
  void RunOnCpu(NodeAddress src, NodeAddress dst, Bytes data);
  Status SendFrom(Socket* s, const NodeAddress& dst, const Bytes& data);
  void Unbind(Socket* s);

  EventLoop* loop_;
  Rng rng_;
  FaultFilter fault_filter_;
  LinkParams default_link_;
  std::map<std::pair<uint32_t, uint32_t>, LinkParams> links_;
  std::map<std::pair<uint32_t, uint32_t>, TimePoint> link_free_at_;
  std::unordered_map<NodeAddress, Socket*, NodeAddressHash> sockets_;
  std::unordered_map<uint32_t, CpuAccount> cpus_;
  mutable std::unordered_map<uint32_t, HostStats> host_stats_;
  uint64_t dropped_ = 0;
};

}  // namespace ins::sim

#endif  // INS_SIM_NETWORK_H_
