#include "ins/sim/network.h"

#include <algorithm>
#include <cassert>

#include "ins/common/logging.h"

namespace ins::sim {

Network::Network(EventLoop* loop, uint64_t seed) : loop_(loop), rng_(seed) {}

Network::~Network() {
  assert(sockets_.empty() && "sockets must not outlive the Network");
}

void Network::SetLink(uint32_t ip_a, uint32_t ip_b, const LinkParams& params) {
  links_[{std::min(ip_a, ip_b), std::max(ip_a, ip_b)}] = params;
}

void Network::SetCpuScale(uint32_t ip, double scale) { cpus_[ip].scale = scale; }

const LinkParams& Network::LinkFor(uint32_t a, uint32_t b) const {
  auto it = links_.find({std::min(a, b), std::max(a, b)});
  return it == links_.end() ? default_link_ : it->second;
}

std::unique_ptr<Network::Socket> Network::Bind(const NodeAddress& address) {
  assert(address.IsValid());
  assert(sockets_.find(address) == sockets_.end() && "address already bound");
  auto sock = std::unique_ptr<Socket>(new Socket(this, address));
  sockets_[address] = sock.get();
  return sock;
}

void Network::Unbind(Socket* s) {
  auto it = sockets_.find(s->address_);
  if (it != sockets_.end() && it->second == s) {
    sockets_.erase(it);
  }
}

Status Network::SendFrom(Socket* s, const NodeAddress& dst, const Bytes& data) {
  if (!dst.IsValid()) {
    return InvalidArgumentError("send to invalid address");
  }
  HostStats& st = host_stats_[s->address_.ip];
  st.datagrams_sent += 1;
  st.bytes_sent += data.size();

  const NodeAddress src = s->address_;
  const LinkParams& link = LinkFor(src.ip, dst.ip);

  Bytes copy = data;
  Duration fault_delay(0);
  if (src.ip != dst.ip && fault_filter_ != nullptr) {
    // Fault injection sees (and may mutate) the in-flight copy. Same-host
    // traffic never traverses a link, so it is exempt, like loss below.
    FaultDecision verdict = fault_filter_(src, dst, copy);
    if (verdict.drop) {
      ++dropped_;
      return Status::Ok();
    }
    fault_delay = verdict.extra_delay;
  }

  if (src.ip != dst.ip && link.loss_probability > 0 &&
      rng_.NextBool(link.loss_probability)) {
    ++dropped_;
    return Status::Ok();  // datagram loss is silent, like UDP
  }

  Duration delay = fault_delay;
  if (src.ip != dst.ip) {
    delay += link.latency;
    if (link.bandwidth_bps > 0) {
      // FIFO serialization on the directed link.
      auto tx = Duration(static_cast<int64_t>(static_cast<double>(data.size()) * 8.0 /
                                              link.bandwidth_bps * 1e6));
      auto key = std::make_pair(src.ip, dst.ip);
      TimePoint start = std::max(loop_->Now(), link_free_at_[key]);
      link_free_at_[key] = start + tx;
      delay += (start + tx) - loop_->Now();
    }
  }

  loop_->ScheduleAt(loop_->Now() + delay,
                    [this, src, dst, data = std::move(copy)]() mutable {
                      Deliver(src, dst, std::move(data));
                    });
  return Status::Ok();
}

void Network::Deliver(NodeAddress src, NodeAddress dst, Bytes data) {
  auto it = sockets_.find(dst);
  if (it == sockets_.end() || it->second->handler_ == nullptr) {
    ++dropped_;  // nobody home (e.g. the node moved): silent drop
    return;
  }
  Socket* sock = it->second;

  HostStats& st = host_stats_[dst.ip];
  st.datagrams_received += 1;
  st.bytes_received += data.size();

  auto cpu_it = cpus_.find(dst.ip);
  if (cpu_it == cpus_.end() || !cpu_it->second.enabled()) {
    sock->handler_(src, data);
    return;
  }

  // CPU-modeled host: queue the handler until the CPU frees up, then charge
  // its measured execution time.
  CpuAccount& cpu = cpu_it->second;
  TimePoint run_at = std::max(loop_->Now(), cpu.busy_until);
  loop_->ScheduleAt(run_at, [this, src, dst, data = std::move(data)]() mutable {
    RunOnCpu(src, dst, std::move(data));
  });
}

void Network::RunOnCpu(NodeAddress src, NodeAddress dst, Bytes data) {
  // Re-resolve by address: the socket may have been unbound while queued.
  auto sit = sockets_.find(dst);
  if (sit == sockets_.end() || sit->second->handler_ == nullptr) {
    ++dropped_;
    return;
  }
  CpuAccount& account = cpus_[dst.ip];
  if (loop_->Now() < account.busy_until) {
    // An earlier handler's charged time pushed the CPU's free point past our
    // scheduled slot; queue behind it.
    loop_->ScheduleAt(account.busy_until, [this, src, dst, data = std::move(data)]() mutable {
      RunOnCpu(src, dst, std::move(data));
    });
    return;
  }
  Socket* target = sit->second;
  Duration wall = MeasureWallTime([&] { target->handler_(src, data); });
  Duration busy = account.Charge(loop_->Now(), wall);
  host_stats_[dst.ip].cpu_busy += busy;
}

const Network::HostStats& Network::host_stats(uint32_t ip) const {
  return host_stats_[ip];  // default-constructs zeroes for unknown hosts
}

void Network::ResetStats() {
  host_stats_.clear();
  dropped_ = 0;
  for (auto& [ip, cpu] : cpus_) {
    cpu.total_busy = Duration(0);
  }
}

Network::Socket::~Socket() { net_->Unbind(this); }

Status Network::Socket::Send(const NodeAddress& destination, const Bytes& data) {
  return net_->SendFrom(this, destination, data);
}

void Network::Socket::SetReceiveHandler(ReceiveHandler handler) {
  handler_ = std::move(handler);
}

Status Network::Socket::Rebind(const NodeAddress& new_address) {
  if (!new_address.IsValid()) {
    return InvalidArgumentError("rebind to invalid address");
  }
  if (net_->sockets_.count(new_address) != 0) {
    return AlreadyExistsError("address in use: " + new_address.ToString());
  }
  net_->Unbind(this);
  address_ = new_address;
  net_->sockets_[address_] = this;
  return Status::Ok();
}

}  // namespace ins::sim
