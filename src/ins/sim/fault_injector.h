// Deterministic fault injection for the simulated network.
//
// A FaultInjector installs itself as the Network's fault filter and applies
// scripted fault windows to inter-host traffic: partitions (hosts split into
// mutually unreachable groups), correlated loss bursts, delay spikes, and
// corruption storms that bit-flip or truncate datagrams in flight. All
// randomness flows through a seeded Rng separate from the Network's own, so
// the same seed and FaultPlan reproduce the same faulted run bit-for-bit.
//
// Windows expire lazily against the event loop's virtual clock: a window is
// "active" exactly when Now() < its end, with no timer bookkeeping. Process-
// level faults (DSR crash/restart) are FaultPlan events too, but the harness
// executes them — the injector only shapes traffic.

#ifndef INS_SIM_FAULT_INJECTOR_H_
#define INS_SIM_FAULT_INJECTOR_H_

#include <unordered_map>
#include <vector>

#include "ins/common/metrics.h"
#include "ins/common/rng.h"
#include "ins/sim/network.h"

namespace ins::sim {

struct FaultEvent {
  enum class Kind {
    kPartition,        // split hosts into the given groups; unlisted hosts are isolated
    kHeal,             // dissolve the partition
    kLossBurst,        // drop each datagram with `probability` for `duration`
    kDelaySpike,       // add `extra_delay` to every datagram for `duration`
    kCorruptionStorm,  // corrupt each datagram with `probability` for `duration`
    kCrashDsr,         // kill the DSR process (executed by the harness)
    kRestartDsr,       // restart the DSR with empty state (executed by the harness)
  };
  TimePoint at{0};  // virtual time the event fires
  Kind kind;
  std::vector<std::vector<uint32_t>> groups;  // kPartition: host IPs per side
  double probability = 0;                     // kLossBurst / kCorruptionStorm
  Duration duration{0};                       // window length
  Duration extra_delay{0};                    // kDelaySpike
};

// A reproducible fault script: events applied at fixed virtual times.
struct FaultPlan {
  std::vector<FaultEvent> events;
};

class FaultInjector {
 public:
  FaultInjector(Network* network, uint64_t seed);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Immediate fault controls (also usable mid-run from tests).
  void Partition(std::vector<std::vector<uint32_t>> groups);
  void Heal();
  void StartLossBurst(double probability, Duration duration);
  void StartDelaySpike(Duration extra_delay, Duration duration);
  void StartCorruptionStorm(double probability, Duration duration);

  // Schedules the plan's traffic-shaping events on the event loop. DSR
  // crash/restart events are skipped here; the harness owns process faults
  // (see SimCluster::ApplyFaultPlan).
  void Schedule(const FaultPlan& plan);

  bool partitioned() const { return partitioned_; }
  // Counters: faults.partition_dropped, faults.burst_dropped, faults.delayed,
  // faults.corrupted.
  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  FaultDecision Filter(const NodeAddress& src, const NodeAddress& dst, Bytes& data);
  void Corrupt(Bytes& data);

  Network* network_;
  EventLoop* loop_;
  Rng rng_;
  MetricsRegistry metrics_;

  bool partitioned_ = false;
  std::unordered_map<uint32_t, int> group_of_;  // host IP -> partition side

  TimePoint loss_until_{0};
  double loss_probability_ = 0;
  TimePoint delay_until_{0};
  Duration extra_delay_{0};
  TimePoint corrupt_until_{0};
  double corrupt_probability_ = 0;
};

}  // namespace ins::sim

#endif  // INS_SIM_FAULT_INJECTOR_H_
